"""Tests for the Rule Coverage Table — thesis §4.1, Table 4.1."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DataError
from repro.core.rct import BitMatrix, RuleCoverageTable, iterative_scale_rct
from repro.core.rule import Rule, WILDCARD
from repro.core.scaling import iterative_scale


def _flight_state(flights):
    """Masks for (*, *, *), (*, *, London), (Fri, *, *) — thesis rules."""
    london = flights.encoder("Destination").encode_existing("London")
    friday = flights.encoder("Day").encode_existing("Fri")
    rules = [
        Rule.all_wildcards(3),
        Rule((WILDCARD, WILDCARD, london)),
        Rule((friday, WILDCARD, WILDCARD)),
    ]
    return rules, [r.match_mask(flights) for r in rules]


class TestBitMatrix:
    def test_add_rule_sets_bits(self, flights):
        rules, masks = _flight_state(flights)
        bm = BitMatrix(14)
        for mask in masks:
            bm.add_rule(mask)
        keys, inverse = bm.group_rows()
        assert inverse.size == 14
        assert keys.shape[0] == 4  # thesis Table 4.1 has 4 rows

    def test_more_than_64_rules_grow_words(self):
        bm = BitMatrix(4)
        rng = np.random.default_rng(0)
        for _ in range(70):
            bm.add_rule(rng.random(4) < 0.5)
        assert bm.num_rules == 70
        assert bm._words.shape[1] == 2

    def test_covers_across_word_boundary(self):
        bm = BitMatrix(3)
        for i in range(65):
            mask = np.zeros(3, dtype=bool)
            mask[i % 3] = True
            bm.add_rule(mask)
        keys, _ = bm.group_rows()
        covered = bm.covers(keys, 64)
        assert covered.shape[0] == keys.shape[0]

    def test_mask_length_mismatch(self):
        bm = BitMatrix(3)
        with pytest.raises(DataError):
            bm.add_rule(np.ones(4, dtype=bool))


class TestRuleCoverageTable:
    def test_thesis_table_4_1(self, flights):
        """RCT after the third rule: the exact rows of Table 4.1."""
        rules, masks = _flight_state(flights)
        bm = BitMatrix(14)
        for mask in masks:
            bm.add_rule(mask)
        # Estimates are the mhat2 column (after two rules converged).
        estimates = np.full(14, 8.4)
        estimates[[0, 3, 5, 10]] = 15.25
        rct = RuleCoverageTable.build(bm, flights.measure, estimates)
        rows = {}
        for g in range(rct.num_groups):
            pattern = tuple(
                bool(bm.covers(rct.keys[g:g + 1], i)[0]) for i in range(3)
            )
            rows[pattern] = (
                int(rct.counts[g]),
                float(rct.sum_m[g]),
                float(rct.sum_mhat[g]),
            )
        # BA=1000: 9 tuples, sum m = 68, sum mhat = 75.6
        assert rows[(True, False, False)] == (9, 68.0, pytest.approx(75.6))
        # BA=1100: 3 tuples, 41, 45.9 (London not Friday)
        assert rows[(True, True, False)] == (3, 41.0, pytest.approx(45.75))
        # BA=1010: 1 tuple, 16, 8.4 (Friday not London)
        assert rows[(True, False, True)] == (1, 16.0, pytest.approx(8.4))
        # BA=1110: 1 tuple, 20, 15.3
        assert rows[(True, True, True)] == (1, 20.0, pytest.approx(15.25))

    def test_rows_partition_the_dataset(self, flights):
        rules, masks = _flight_state(flights)
        bm = BitMatrix(14)
        for mask in masks:
            bm.add_rule(mask)
        rct = RuleCoverageTable.build(
            bm, flights.measure, np.ones(14)
        )
        assert rct.counts.sum() == 14
        assert rct.sum_m.sum() == pytest.approx(flights.measure.sum())

    def test_length_mismatch_rejected(self, flights):
        bm = BitMatrix(14)
        bm.add_rule(np.ones(14, dtype=bool))
        with pytest.raises(DataError):
            RuleCoverageTable.build(bm, np.ones(10), np.ones(14))


class TestRctScaling:
    def test_matches_algorithm_1_fixpoint(self, flights):
        """Algorithm 3 converges to the same estimates as Algorithm 1."""
        rules, masks = _flight_state(flights)
        bm = BitMatrix(14)
        for mask in masks:
            bm.add_rule(mask)
        direct = iterative_scale(masks, flights.measure, epsilon=1e-9)
        via_rct = iterative_scale_rct(
            bm,
            flights.measure,
            np.ones(14),
            np.ones(3),
            epsilon=1e-9,
        )
        np.testing.assert_allclose(
            via_rct.estimates, direct.estimates, rtol=1e-6
        )

    @given(seed=st.integers(0, 3000), num_rules=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_random_rule_sets_match_algorithm_1(self, seed, num_rules):
        rng = np.random.default_rng(seed)
        n = 40
        measure = rng.uniform(0.5, 5.0, size=n)
        masks = [np.ones(n, dtype=bool)]
        for _ in range(num_rules):
            mask = rng.random(n) < 0.5
            if not mask.any():
                mask[0] = True
            masks.append(mask)
        bm = BitMatrix(n)
        for mask in masks:
            bm.add_rule(mask)
        direct = iterative_scale(masks, measure, epsilon=1e-8)
        via_rct = iterative_scale_rct(
            bm, measure, np.ones(n), np.ones(len(masks)), epsilon=1e-8
        )
        np.testing.assert_allclose(
            via_rct.estimates, direct.estimates, rtol=1e-4, atol=1e-8
        )

    def test_data_passes_constant(self, flights):
        rules, masks = _flight_state(flights)
        bm = BitMatrix(14)
        for mask in masks:
            bm.add_rule(mask)
        result = iterative_scale_rct(
            bm, flights.measure, np.ones(14), np.ones(3)
        )
        assert result.data_passes == 2

    def test_group_count_is_small(self, flights):
        # The RCT has at most 2^|R| rows but usually far fewer — here 4
        # rows versus 14 tuples (and the gap widens with |D|).
        rules, masks = _flight_state(flights)
        bm = BitMatrix(14)
        for mask in masks:
            bm.add_rule(mask)
        result = iterative_scale_rct(
            bm, flights.measure, np.ones(14), np.ones(3)
        )
        assert result.rct.num_groups == 4

    def test_lambda_count_must_match(self, flights):
        bm = BitMatrix(14)
        bm.add_rule(np.ones(14, dtype=bool))
        with pytest.raises(DataError):
            iterative_scale_rct(
                bm, flights.measure, np.ones(14), np.ones(3)
            )
