"""Tests for redundant-candidate elimination (thesis §7 future work)."""

import numpy as np
import pytest

from repro.core.codec import RowCodec
from repro.core.lattice_packed import pack_rule_rows
from repro.core.miner import mine
from repro.core.redundancy import (
    filter_candidate_set,
    redundant_mask_packed,
    redundant_mask_rules,
)
from repro.core.rule import Rule, WILDCARD
from repro.data.schema import Schema
from repro.data.table import Table


def _support_table():
    """A table where ('a', 'x') has the same support as ('a', *)."""
    schema = Schema(["A", "B"], "m")
    rows = [
        ("a", "x", 5.0),
        ("a", "x", 7.0),
        ("b", "x", 1.0),
        ("b", "y", 2.0),
    ]
    return Table.from_rows(schema, rows)


class TestRuleMasks:
    def test_descendant_with_equal_support_is_redundant(self):
        # (0, 0) covers exactly the tuples (0, *) covers -> redundant.
        rules = [Rule((0, 0)), Rule((0, WILDCARD)), Rule((WILDCARD, 0))]
        counts = np.array([2.0, 2.0, 3.0])
        sums = np.array([12.0, 12.0, 13.0])
        mask = redundant_mask_rules(rules, counts, sums)
        assert mask[0]           # descendant dropped
        assert not mask[1]       # ancestor kept
        assert not mask[2]       # different support

    def test_equal_count_different_sum_not_redundant(self):
        rules = [Rule((0, 0)), Rule((0, WILDCARD))]
        counts = np.array([2.0, 2.0])
        sums = np.array([5.0, 12.0])
        mask = redundant_mask_rules(rules, counts, sums)
        assert not mask.any()

    def test_missing_parent_keeps_candidate(self):
        rules = [Rule((0, 0))]
        mask = redundant_mask_rules(rules, np.array([2.0]), np.array([5.0]))
        assert not mask.any()


class TestPackedMask:
    def test_matches_rule_mask(self, rng):
        codec = RowCodec([3, 3, 3])
        rules = []
        for _ in range(40):
            rules.append(Rule(tuple(
                int(v) if rng.random() > 0.4 else WILDCARD
                for v in rng.integers(0, 3, size=3)
            )))
        rules = list(dict.fromkeys(rules))
        counts = rng.integers(1, 4, size=len(rules)).astype(float)
        sums = rng.integers(1, 4, size=len(rules)).astype(float)
        keys = pack_rule_rows(
            np.array([r.values for r in rules], dtype=np.int64), codec
        )
        packed = redundant_mask_packed(keys, counts, sums, codec)
        reference = redundant_mask_rules(rules, counts, sums)
        np.testing.assert_array_equal(packed, reference)


class TestMinerIntegration:
    def test_elimination_preserves_rule_quality(self, small_gdelt):
        plain = mine(small_gdelt, k=4, variant="baseline",
                     sample_size=32, seed=5)
        deduped = mine(small_gdelt, k=4, variant="baseline",
                       sample_size=32, seed=5, eliminate_redundant=True)
        assert deduped.final_kl == pytest.approx(plain.final_kl, rel=1e-6)

    def test_elimination_reduces_candidates(self):
        table = _support_table()
        plain = mine(table, k=1, variant="baseline", sample_size=4, seed=0)
        deduped = mine(table, k=1, variant="baseline", sample_size=4,
                       seed=0, eliminate_redundant=True)
        assert deduped.candidates_scored < plain.candidates_scored
        assert deduped.metrics["counters"].get(
            "redundant_candidates", 0
        ) > 0

    def test_selected_rules_are_maximally_general(self):
        # With elimination on, the specialized twin of an equal-support
        # pair can never be selected.
        table = _support_table()
        result = mine(table, k=2, variant="baseline", sample_size=4,
                      seed=0, eliminate_redundant=True)
        a_code = table.encoder("A").encode_existing("a")
        x_code = table.encoder("B").encode_existing("x")
        specialized = Rule((a_code, x_code))
        assert specialized not in [m.rule for m in result.rule_set]
