"""Tests for cube-lattice operations and column grouping (§2.5, §4.3).

Includes the property-based check of Appendix A Theorem 1: staged
(column-grouped) ancestor generation produces exactly the same
candidate rules with exactly the same aggregates as single-stage
generation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.core import lattice
from repro.core.rule import Rule, WILDCARD


class TestCubeLattice:
    def test_size_formula(self):
        rule = Rule((1, 2, 3))
        assert lattice.lattice_size(rule) == 8
        assert len(lattice.cube_lattice(rule)) == 8

    def test_root_lattice_is_singleton(self):
        root = Rule.all_wildcards(5)
        assert lattice.cube_lattice(root) == [root]

    def test_exclude_self(self):
        rule = Rule((1, WILDCARD))
        elements = lattice.cube_lattice(rule, include_self=False)
        assert rule not in elements
        assert len(elements) == 1


class TestColumnGroups:
    def test_even_deterministic_split(self):
        groups = lattice.make_column_groups(6, 2)
        assert groups == [(0, 1, 2), (3, 4, 5)]

    def test_groups_partition_all_positions(self):
        groups = lattice.make_column_groups(7, 3, seed=11)
        flat = sorted(p for g in groups for p in g)
        assert flat == list(range(7))

    def test_seeded_split_is_deterministic(self):
        assert lattice.make_column_groups(9, 2, seed=5) == \
            lattice.make_column_groups(9, 2, seed=5)

    def test_invalid_group_counts(self):
        with pytest.raises(ConfigError):
            lattice.make_column_groups(3, 0)
        with pytest.raises(ConfigError):
            lattice.make_column_groups(3, 4)

    def test_single_group_is_everything(self):
        assert lattice.make_column_groups(4, 1) == [(0, 1, 2, 3)]


class TestAncestorsWithinGroup:
    def test_thesis_figure_4_2_first_stage(self):
        # (Fri, SF, London) with G1 = {Day, Origin}: the generated
        # ancestors are itself, (*, SF, London), (Fri, *, London) and
        # (*, *, London) — never wildcarding Destination.
        rule = Rule((0, 1, 2))
        out = set(lattice.ancestors_within_group(rule, (0, 1)))
        assert out == {
            Rule((0, 1, 2)),
            Rule((WILDCARD, 1, 2)),
            Rule((0, WILDCARD, 2)),
            Rule((WILDCARD, WILDCARD, 2)),
        }

    def test_wildcards_already_present_stay(self):
        rule = Rule((WILDCARD, 1, 2))
        out = set(lattice.ancestors_within_group(rule, (0, 1)))
        assert out == {Rule((WILDCARD, 1, 2)), Rule((WILDCARD, WILDCARD, 2))}

    def test_empty_group_yields_self_only(self):
        rule = Rule((1, 2))
        assert list(lattice.ancestors_within_group(rule, ())) == [rule]


def _random_weighted_rules(rng, num_rules, arity, cardinality):
    rules = {}
    for _ in range(num_rules):
        values = [
            int(v) if rng.random() > 0.4 else WILDCARD
            for v in rng.integers(0, cardinality, size=arity)
        ]
        rules[Rule(values)] = (
            float(rng.integers(1, 50)),
            float(rng.integers(1, 50)),
            float(rng.integers(1, 10)),
        )
    return rules


class TestAppendixATheorem:
    """Theorem 1: staged == single-stage (rules and aggregates)."""

    @given(
        seed=st.integers(0, 10_000),
        arity=st.integers(2, 6),
        num_groups=st.integers(2, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_staged_equals_single_stage(self, seed, arity, num_groups):
        rng = np.random.default_rng(seed)
        weighted = _random_weighted_rules(rng, 8, arity, 3)
        groups = lattice.make_column_groups(
            arity, min(num_groups, arity), seed=seed
        )
        single, _ = lattice.generate_ancestors_single_stage(weighted)
        staged, _ = lattice.generate_ancestors_staged(weighted, groups)
        assert set(single) == set(staged)
        for rule in single:
            assert single[rule] == pytest.approx(staged[rule])

    def test_staged_emits_fewer_pairs_on_instance_heavy_input(self):
        # The §4.3 saving: when LCAs stand for many pair instances,
        # senior ancestors are generated from the *merged* intermediate
        # rules once, instead of once per instance.  Fully bound rules
        # with large multiplicities show the effect clearly.
        rng = np.random.default_rng(7)
        weighted = {}
        multiplicities = {}
        for _ in range(20):
            rule = Rule(tuple(int(v) for v in rng.integers(0, 2, size=6)))
            weighted[rule] = (1.0, 1.0, 50.0)
            multiplicities[rule] = 50
        groups = lattice.make_column_groups(6, 2)
        _, single_emitted = lattice.generate_ancestors_single_stage(
            weighted, multiplicities
        )
        _, staged_emitted = lattice.generate_ancestors_staged(
            weighted, groups, multiplicities
        )
        assert staged_emitted < single_emitted

    def test_aggregates_sum_descendant_inputs(self):
        # Two fully bound rules sharing one attribute value: the shared
        # ancestor aggregates both, the root aggregates everything.
        weighted = {
            Rule((0, 1)): (10.0, 5.0, 1.0),
            Rule((0, 2)): (20.0, 7.0, 2.0),
        }
        aggregates, _ = lattice.generate_ancestors_single_stage(weighted)
        assert aggregates[Rule((0, WILDCARD))] == (30.0, 12.0, 3.0)
        assert aggregates[Rule((WILDCARD, WILDCARD))] == (30.0, 12.0, 3.0)
        assert aggregates[Rule((0, 1))] == (10.0, 5.0, 1.0)

    def test_instance_weighted_emission_counts(self):
        # One LCA standing for 5 pairs with 2 bound attributes emits
        # 5 * 4 pairs in the single-stage pipeline.
        weighted = {Rule((0, 1)): (1.0, 1.0, 5.0)}
        _, emitted = lattice.generate_ancestors_single_stage(
            weighted, {Rule((0, 1)): 5}
        )
        assert emitted == 20
