"""Tests for the packed-row codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DataError
from repro.core.codec import (
    RowCodec,
    group_packed,
    group_rows_fallback,
)
from repro.core.rule import WILDCARD


class TestRowCodec:
    def test_fits_for_thesis_dataset_shapes(self):
        gdelt = RowCodec([200, 40, 4, 300, 6, 9, 9, 9, 60])
        susy = RowCodec([3] * 18)
        assert gdelt.fits
        assert susy.fits

    def test_pack_values_round_trips(self):
        codec = RowCodec([5, 3, 7])
        values = (4, WILDCARD, 6)
        assert codec.unpack(codec.pack_values(values)) == values

    def test_pack_columns_round_trips(self, rng):
        codec = RowCodec([10, 4, 6])
        cols = [rng.integers(0, c, size=20).astype(np.int64) for c in (10, 4, 6)]
        packed = codec.pack_columns(cols)
        rows = codec.unpack_batch(packed)
        for j in range(3):
            np.testing.assert_array_equal(rows[:, j], cols[j])

    @given(
        seed=st.integers(0, 10_000),
        cards=st.lists(st.integers(1, 30), min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_packing_is_injective(self, seed, cards):
        codec = RowCodec(cards)
        rng = np.random.default_rng(seed)
        rows = set()
        for _ in range(30):
            values = tuple(
                int(rng.integers(-1, c)) for c in cards
            )
            rows.add(values)
        keys = {codec.pack_values(v) for v in rows}
        assert len(keys) == len(rows)

    def test_distinct_wildcard_and_zero(self):
        codec = RowCodec([4])
        assert codec.pack_values((0,)) != codec.pack_values((WILDCARD,))

    def test_oversized_codec_reports_not_fits(self):
        codec = RowCodec([2**20] * 4)
        assert not codec.fits
        with pytest.raises(DataError):
            codec.pack_values((1, 1, 1, 1))

    def test_invalid_cardinalities(self):
        with pytest.raises(DataError):
            RowCodec([])
        with pytest.raises(DataError):
            RowCodec([0, 3])


class TestGrouping:
    def test_group_packed_sums_weights(self):
        keys = np.array([3, 3, 5, 3], dtype=np.int64)
        weights = [np.array([1.0, 2.0, 4.0, 8.0])]
        uniq, (sums,) = group_packed(keys, weights)
        np.testing.assert_array_equal(uniq, [3, 5])
        np.testing.assert_allclose(sums, [11.0, 4.0])

    def test_fallback_matches_packed(self, rng):
        codec = RowCodec([4, 4])
        rows = rng.integers(-1, 4, size=(50, 2)).astype(np.int64)
        weights = [rng.uniform(0, 1, size=50)]
        keys = np.array([codec.pack_values(tuple(r)) for r in rows])
        uniq_p, (sums_p,) = group_packed(keys, weights)
        uniq_r, (sums_r,) = group_rows_fallback(rows, weights)
        assert uniq_p.size == uniq_r.shape[0]
        # Align via unpacking and compare sums per tuple key.
        packed_map = {
            codec.unpack(k): s for k, s in zip(uniq_p, sums_p)
        }
        for row, s in zip(uniq_r, sums_r):
            assert packed_map[tuple(int(v) for v in row)] == pytest.approx(s)
