"""Tests for sample-based candidate pruning (thesis §3.1.1, §4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DataError
from repro.common.rng import make_rng
from repro.core.index import SampleInvertedIndex
from repro.core.rule import Rule, WILDCARD
from repro.core.sampling import (
    draw_sample_rows,
    lca_aggregates_baseline,
    lca_aggregates_fast,
    merge_lca_aggregates,
    sample_match_counts,
)
from repro.engine.task import TaskContext


def _reference_lcas(columns, measure, estimates, sample_rows):
    """Quadratic-time oracle: explicit LCA per (tuple, sample) pair."""
    n = measure.size
    acc = {}
    for srow in sample_rows:
        for i in range(n):
            trow = tuple(int(col[i]) for col in columns)
            key = Rule.lca(trow, srow).values
            entry = acc.setdefault(key, [0.0, 0.0, 0.0])
            entry[0] += measure[i]
            entry[1] += estimates[i]
            entry[2] += 1.0
    return acc


class TestDrawSample:
    def test_sample_rows_come_from_table(self, flights, rng):
        rows = draw_sample_rows(flights, 5, rng)
        table_rows = {flights.encoded_row(i) for i in range(14)}
        assert len(rows) == 5
        assert all(r in table_rows for r in rows)

    def test_sample_capped_at_table_size(self, flights, rng):
        rows = draw_sample_rows(flights, 100, rng)
        assert len(rows) == 14

    def test_empty_table_blames_the_table(self, flights, rng):
        # The old message blamed the sample size ("sample size must be
        # positive") when the *table* had no rows.
        from repro.common.errors import DataError

        with pytest.raises(DataError, match="empty table"):
            draw_sample_rows(flights.slice(0, 0), 5, rng)

    def test_non_positive_size_rejected(self, flights, rng):
        from repro.common.errors import DataError

        with pytest.raises(DataError, match="sample size must be positive"):
            draw_sample_rows(flights, 0, rng)


class TestLcaAggregates:
    def test_baseline_matches_oracle(self, flights, rng):
        columns = flights.dimension_columns()
        m = flights.measure
        est = np.ones(14)
        sample = draw_sample_rows(flights, 4, rng)
        got = lca_aggregates_baseline(columns, m, est, sample)
        expected = _reference_lcas(columns, m, est, sample)
        assert set(got) == set(expected)
        for key in expected:
            assert got[key] == pytest.approx(expected[key])

    def test_fast_equals_baseline(self, flights, rng):
        columns = flights.dimension_columns()
        m = flights.measure
        est = rng.uniform(1, 2, size=14)
        sample = draw_sample_rows(flights, 6, rng)
        index = SampleInvertedIndex(sample, 3)
        slow = lca_aggregates_baseline(columns, m, est, sample)
        fast = lca_aggregates_fast(columns, m, est, index, sample)
        assert set(slow) == set(fast)
        for key in slow:
            assert fast[key] == pytest.approx(slow[key])

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_aggregates_match_oracle_on_random_tables(self, seed):
        rng = np.random.default_rng(seed)
        n, d = 30, 3
        columns = [rng.integers(0, 3, size=n).astype(np.int64) for _ in range(d)]
        measure = rng.uniform(0, 5, size=n)
        estimates = rng.uniform(0.5, 2, size=n)
        sample = [tuple(int(col[i]) for col in columns) for i in
                  rng.choice(n, size=4, replace=False)]
        got = lca_aggregates_baseline(columns, measure, estimates, sample)
        expected = _reference_lcas(columns, measure, estimates, sample)
        assert set(got) == set(expected)
        for key in expected:
            assert got[key] == pytest.approx(expected[key])

    def test_pair_totals_preserved(self, flights, rng):
        # The LCA table partitions the |s| x n pairs: counts sum to it.
        columns = flights.dimension_columns()
        sample = draw_sample_rows(flights, 6, rng)
        acc = lca_aggregates_baseline(
            columns, flights.measure, np.ones(14), sample
        )
        assert sum(v[2] for v in acc.values()) == 6 * 14

    def test_fast_charges_fewer_ops_when_values_differ(self, flights, rng):
        columns = flights.dimension_columns()
        sample = draw_sample_rows(flights, 6, rng)
        index = SampleInvertedIndex(sample, 3)
        tc_slow = TaskContext(0, 0)
        tc_fast = TaskContext(0, 0)
        lca_aggregates_baseline(
            columns, flights.measure, np.ones(14), sample, tc_slow
        )
        lca_aggregates_fast(
            columns, flights.measure, np.ones(14), index, sample, tc_fast
        )
        # Flight attributes rarely agree: §4.2 predicts fewer operations.
        assert tc_fast.ops < tc_slow.ops

    def test_fast_requires_index(self, flights, rng):
        sample = draw_sample_rows(flights, 2, rng)
        with pytest.raises(DataError):
            lca_aggregates_fast(
                flights.dimension_columns(),
                flights.measure,
                np.ones(14),
                None,
                sample,
            )


class TestMerge:
    def test_merge_sums_entrywise(self):
        a = {(1, -1): [1.0, 2.0, 1.0]}
        b = {(1, -1): [3.0, 1.0, 2.0], (-1, -1): [5.0, 5.0, 5.0]}
        merged = merge_lca_aggregates([a, b])
        assert merged[(1, -1)] == [4.0, 3.0, 3.0]
        assert merged[(-1, -1)] == [5.0, 5.0, 5.0]

    def test_merge_of_splits_equals_whole(self, flights, rng):
        columns = flights.dimension_columns()
        m = flights.measure
        est = np.ones(14)
        sample = draw_sample_rows(flights, 4, rng)
        whole = lca_aggregates_baseline(columns, m, est, sample)
        first = lca_aggregates_baseline(
            [c[:7] for c in columns], m[:7], est[:7], sample
        )
        second = lca_aggregates_baseline(
            [c[7:] for c in columns], m[7:], est[7:], sample
        )
        merged = merge_lca_aggregates([first, second])
        assert set(merged) == set(whole)
        for key in whole:
            assert merged[key] == pytest.approx(whole[key])


class TestSampleMatchCounts:
    def test_thesis_correction_invariant(self, flights, rng):
        # Every candidate generated from LCAs matches >= 1 sample tuple.
        sample = draw_sample_rows(flights, 5, rng)
        acc = lca_aggregates_baseline(
            flights.dimension_columns(), flights.measure, np.ones(14), sample
        )
        candidates = []
        for key in acc:
            candidates.extend(a.values for a in Rule(key).ancestors())
        counts = sample_match_counts(candidates, sample)
        assert np.all(counts >= 1)

    def test_counts_against_bruteforce(self, rng):
        sample = [(0, 1), (0, 2), (1, 1)]
        candidates = [
            (WILDCARD, WILDCARD),  # matches all 3
            (0, WILDCARD),         # matches 2
            (WILDCARD, 1),         # matches 2
            (1, 2),                # matches 0
        ]
        counts = sample_match_counts(candidates, sample)
        np.testing.assert_array_equal(counts, [3, 2, 2, 0])

    def test_chunked_path_consistency(self, rng):
        # Exercise the block-partitioned implementation past one block.
        sample = [tuple(rng.integers(0, 3, size=4)) for _ in range(8)]
        candidates = [
            tuple(int(v) if rng.random() > 0.5 else WILDCARD
                  for v in rng.integers(0, 3, size=4))
            for _ in range(5000)
        ]
        counts = sample_match_counts(candidates, sample)
        # Oracle on a few spot indices.
        for idx in [0, 1234, 4999]:
            rule = Rule(candidates[idx])
            expected = sum(1 for s in sample if rule.matches(s))
            assert counts[idx] == expected
