"""Tests for the mining session (partitioned state)."""

import numpy as np
import pytest

from repro.common.errors import EngineError
from repro.core.rule import Rule, WILDCARD
from repro.core.session import MiningSession
from repro.data.schema import Schema
from repro.data.table import Table


class TestPartitioning:
    def test_partitions_cover_table(self, flights, cluster):
        session = MiningSession(cluster, flights, num_partitions=4)
        rows = sum(p.num_rows for p in session.partitions)
        assert rows == 14
        assert session.num_partitions == 4

    def test_partition_count_capped_by_rows(self, flights, cluster):
        session = MiningSession(cluster, flights, num_partitions=100)
        assert session.num_partitions == 14

    def test_default_partitions_use_cluster_shape(self, flights, cluster):
        session = MiningSession(cluster, flights)
        expected = min(
            14,
            cluster.spec.num_executors * cluster.spec.cores_per_executor,
        )
        assert session.num_partitions == expected

    def test_empty_table_rejected(self, cluster):
        table = Table.from_rows(Schema(["a"], "m"), [])
        with pytest.raises(EngineError):
            MiningSession(cluster, table)

    def test_partition_columns_are_views(self, flights, cluster):
        session = MiningSession(cluster, flights, num_partitions=2)
        part = session.partitions[1]
        np.testing.assert_array_equal(
            part.columns[0],
            flights.dimension_column("Day")[part.start:part.stop],
        )


class TestStages:
    def test_run_over_data_collects_outputs(self, flights, cluster):
        session = MiningSession(cluster, flights, num_partitions=3)

        def kernel(tc, part):
            return part.num_rows

        stage = session.run_over_data(kernel)
        assert sum(stage.outputs) == 14

    def test_first_pass_charges_disk_then_cached(self, flights, cluster):
        session = MiningSession(cluster, flights, num_partitions=2)

        def kernel(tc, part):
            return tc

        first = session.run_over_data(kernel)
        second = session.run_over_data(kernel)
        assert sum(tc.disk_bytes for tc in first.outputs) > 0
        assert sum(tc.disk_bytes for tc in second.outputs) == 0

    def test_shuffle_data_charges_partition_bytes(self, flights, cluster):
        session = MiningSession(cluster, flights, num_partitions=2)
        session.run_over_data(lambda tc, p: None, shuffle_data=True)
        assert cluster.metrics.counter("shuffle_bytes") > 0

    def test_phase_attribution(self, flights, cluster):
        session = MiningSession(cluster, flights, num_partitions=2)
        session.run_over_data(
            lambda tc, p: tc.add_records(p.num_rows), phase="myphase"
        )
        assert cluster.metrics.phase("myphase") > 0


class TestRuleCoverage:
    def test_add_rule_extends_masks_and_bits(self, flights, cluster):
        session = MiningSession(cluster, flights, num_partitions=2)
        london = flights.encoder("Destination").encode_existing("London")
        session.add_rule_coverage(Rule.all_wildcards(3))
        session.add_rule_coverage(Rule((WILDCARD, WILDCARD, london)))
        assert len(session.masks) == 2
        assert session.bit_matrix.num_rules == 2
        assert session.masks[1].sum() == 4

    def test_charge_phase_meters_matching(self, flights, cluster):
        session = MiningSession(cluster, flights, num_partitions=2)
        session.add_rule_coverage(
            Rule.all_wildcards(3), charge_phase="iterative_scaling"
        )
        assert cluster.metrics.phase("iterative_scaling") > 0


class TestMeasureState:
    def test_transform_applied(self, cluster):
        table = Table.from_rows(
            Schema(["a"], "m"), [("x", -5.0), ("y", 5.0)]
        )
        session = MiningSession(cluster, table, num_partitions=1)
        assert np.all(session.measure >= 0)

    def test_estimates_start_at_one(self, flights, cluster):
        session = MiningSession(cluster, flights, num_partitions=1)
        np.testing.assert_array_equal(session.estimates, np.ones(14))
