"""Tests for measure preconditioning (thesis §2.2 transformations)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.common.errors import DataError
from repro.core.measure import MeasureTransform

any_measures = hnp.arrays(
    np.float64,
    st.integers(1, 50),
    elements=st.floats(-1000, 1000, allow_nan=False, allow_infinity=False),
)


class TestFit:
    def test_non_negative_measure_is_identity(self):
        m = np.array([1.0, 2.0, 0.0])
        t = MeasureTransform.fit(m)
        assert t.is_identity
        np.testing.assert_array_equal(t.transformed, m)

    def test_negative_values_are_shifted_to_non_negative(self):
        m = np.array([-5.0, 3.0, 0.0])
        t = MeasureTransform.fit(m)
        assert t.transformed.min() == pytest.approx(0.0)
        assert np.all(t.transformed >= 0)

    def test_all_zero_measure_gets_uniform_lift(self):
        m = np.zeros(4)
        t = MeasureTransform.fit(m)
        assert t.transformed.sum() == pytest.approx(1.0)
        assert np.all(t.transformed > 0)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            MeasureTransform.fit(np.array([]))

    def test_non_finite_rejected(self):
        with pytest.raises(DataError):
            MeasureTransform.fit(np.array([1.0, np.nan]))
        with pytest.raises(DataError):
            MeasureTransform.fit(np.array([1.0, np.inf]))


class TestInvariants:
    @given(m=any_measures)
    @settings(max_examples=80, deadline=None)
    def test_transformed_is_always_valid_for_maxent(self, m):
        t = MeasureTransform.fit(m)
        assert np.all(t.transformed >= 0)
        assert t.transformed.sum() > 0

    @given(m=any_measures)
    @settings(max_examples=80, deadline=None)
    def test_inverse_round_trips(self, m):
        t = MeasureTransform.fit(m)
        np.testing.assert_allclose(
            t.inverse(t.transformed), m, rtol=1e-9, atol=1e-9
        )

    @given(m=any_measures)
    @settings(max_examples=40, deadline=None)
    def test_transform_is_monotone(self, m):
        # The shift preserves order; floating-point absorption may
        # collapse near-ties to equality but never inverts them.
        t = MeasureTransform.fit(m)
        by_m = np.argsort(m, kind="stable")
        assert np.all(np.diff(t.transformed[by_m]) >= 0)
