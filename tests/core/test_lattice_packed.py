"""Equivalence tests: packed ancestor generation vs the reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DataError
from repro.core import lattice
from repro.core.codec import RowCodec
from repro.core.lattice_packed import (
    generate_ancestors_packed,
    match_counts_packed,
    pack_rule_rows,
)
from repro.core.rule import Rule, WILDCARD
from repro.core.sampling import sample_match_counts


def _random_rules(rng, count, cards):
    rules = {}
    for _ in range(count):
        values = tuple(
            int(rng.integers(0, c)) if rng.random() > 0.4 else WILDCARD
            for c in cards
        )
        rules[Rule(values)] = (
            float(rng.integers(1, 30)),
            float(rng.integers(1, 30)),
            float(rng.integers(1, 8)),
        )
    return rules


def _pack_weighted(weighted, codec):
    rules = list(weighted)
    keys = np.array(
        [codec.pack_values(r.values) for r in rules], dtype=np.int64
    )
    aggs = np.array([weighted[r] for r in rules], dtype=np.float64)
    return keys, aggs


class TestGenerateAncestorsPacked:
    @given(seed=st.integers(0, 5000), arity=st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_single_stage(self, seed, arity):
        rng = np.random.default_rng(seed)
        cards = [3] * arity
        codec = RowCodec(cards)
        weighted = _random_rules(rng, 8, cards)
        keys, aggs = _pack_weighted(weighted, codec)
        out_keys, out_aggs, _ = generate_ancestors_packed(keys, aggs, codec)
        reference, _ = lattice.generate_ancestors_single_stage(weighted)
        got = {
            Rule(codec.unpack(int(k))): tuple(a)
            for k, a in zip(out_keys, out_aggs)
        }
        assert set(got) == set(reference)
        for rule, agg in reference.items():
            assert got[rule] == pytest.approx(agg)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_grouped(self, seed):
        rng = np.random.default_rng(seed)
        cards = [4, 4, 4, 4]
        codec = RowCodec(cards)
        weighted = _random_rules(rng, 6, cards)
        keys, aggs = _pack_weighted(weighted, codec)
        group = (0, 2)
        out_keys, out_aggs, _ = generate_ancestors_packed(
            keys, aggs, codec, group=group
        )
        reference = {}
        for rule, agg in weighted.items():
            for ancestor in lattice.ancestors_within_group(rule, group):
                existing = reference.get(ancestor)
                if existing is None:
                    reference[ancestor] = agg
                else:
                    reference[ancestor] = tuple(
                        a + b for a, b in zip(existing, agg)
                    )
        got = {
            Rule(codec.unpack(int(k))): tuple(a)
            for k, a in zip(out_keys, out_aggs)
        }
        assert set(got) == set(reference)
        for rule, agg in reference.items():
            assert got[rule] == pytest.approx(agg)

    def test_instance_weighted_emission_counts_match_reference(self):
        rng = np.random.default_rng(3)
        cards = [3, 3, 3]
        codec = RowCodec(cards)
        weighted = _random_rules(rng, 10, cards)
        multiplicities = {r: int(a[2]) for r, a in weighted.items()}
        keys, aggs = _pack_weighted(weighted, codec)
        _, _, emitted = generate_ancestors_packed(
            keys, aggs, codec, instance_weighted=True
        )
        _, reference_emitted = lattice.generate_ancestors_single_stage(
            weighted, multiplicities
        )
        assert emitted == reference_emitted

    def test_empty_input(self):
        codec = RowCodec([3, 3])
        keys = np.empty(0, dtype=np.int64)
        aggs = np.empty((0, 3))
        out_keys, out_aggs, emitted = generate_ancestors_packed(
            keys, aggs, codec
        )
        assert out_keys.size == 0
        assert emitted == 0

    def test_shape_mismatch_rejected(self):
        codec = RowCodec([3])
        with pytest.raises(DataError):
            generate_ancestors_packed(
                np.array([1]), np.ones((2, 3)), codec
            )


class TestPackRuleRows:
    def test_round_trip_with_wildcards(self):
        codec = RowCodec([5, 5])
        rows = np.array([[2, WILDCARD], [WILDCARD, 4]], dtype=np.int64)
        keys = pack_rule_rows(rows, codec)
        assert codec.unpack(int(keys[0])) == (2, WILDCARD)
        assert codec.unpack(int(keys[1])) == (WILDCARD, 4)


class TestMatchCountsPacked:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_matches_tuple_implementation(self, seed):
        rng = np.random.default_rng(seed)
        cards = [3, 4, 3]
        codec = RowCodec(cards)
        sample = [
            tuple(int(rng.integers(0, c)) for c in cards) for _ in range(6)
        ]
        candidates = [
            tuple(
                int(rng.integers(0, c)) if rng.random() > 0.5 else WILDCARD
                for c in cards
            )
            for _ in range(40)
        ]
        keys = pack_rule_rows(np.array(candidates, dtype=np.int64), codec)
        packed = match_counts_packed(keys, sample, codec)
        reference = sample_match_counts(candidates, sample)
        np.testing.assert_array_equal(packed, reference)
