"""Tests for multi-measure rule mining (thesis §7 future work)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, DataError
from repro.core.multimeasure import MultiMeasureSirum
from repro.core.rule import WILDCARD
from repro.data.generators import SyntheticSpec, generate


def _two_measure_table(seed=7):
    """A table where measure A is driven by attr 0 and B by attr 1."""
    spec = SyntheticSpec(
        num_rows=1500,
        cardinalities=[5, 5, 5],
        skew=0.2,
        num_planted_rules=0,
        planted_arity=1,
        noise_scale=0.3,
        base_measure=10.0,
        measure_name="A",
    )
    table, _ = generate(spec, seed=seed)
    rng = np.random.default_rng(seed + 1)
    a = table.measure.copy()
    a[table.dimension_columns()[0] == 0] += 25.0
    b = 5.0 + rng.normal(0, 0.3, size=len(table))
    b[table.dimension_columns()[1] == 0] += 25.0
    return table.with_measure(a), b


class TestMultiMeasureSirum:
    def test_shared_rules_cover_both_measures(self):
        table, b = _two_measure_table()
        miner = MultiMeasureSirum(k=4, sample_size=48, seed=2)
        result = miner.mine(table, extra_measures={"B": b})
        bound_attrs = set()
        for rule in result.rules[1:]:
            for j, v in enumerate(rule.values):
                if v != WILDCARD:
                    bound_attrs.add(j)
        # Rules must touch the drivers of *both* measures.
        assert 0 in bound_attrs
        assert 1 in bound_attrs

    def test_kl_decreases_for_every_measure(self):
        table, b = _two_measure_table()
        result = MultiMeasureSirum(k=3, sample_size=32, seed=2).mine(
            table, extra_measures={"B": b}
        )
        for name in result.measure_names:
            trace = result.kl_traces[name]
            assert trace[-1] <= trace[0] + 1e-9

    def test_information_gain_positive_for_both(self):
        table, b = _two_measure_table()
        result = MultiMeasureSirum(k=4, sample_size=48, seed=2).mine(
            table, extra_measures={"B": b}
        )
        assert result.information_gain(table.schema.measure) > 0
        assert result.information_gain("B") > 0

    def test_estimates_in_original_units(self):
        table, b = _two_measure_table()
        result = MultiMeasureSirum(k=2, sample_size=32, seed=2).mine(
            table, extra_measures={"B": b}
        )
        estimates = result.estimates("B")
        assert estimates.mean() == pytest.approx(np.mean(b), rel=0.05)

    def test_single_measure_degenerates_gracefully(self, flights):
        result = MultiMeasureSirum(k=2, sample_size=14, seed=1).mine(flights)
        assert len(result.rules) >= 2
        assert result.measure_names == ["Delay"]

    def test_length_mismatch_rejected(self, flights):
        with pytest.raises(DataError):
            MultiMeasureSirum(k=1).mine(
                flights, extra_measures={"B": np.ones(3)}
            )

    def test_duplicate_measure_name_rejected(self, flights):
        with pytest.raises(DataError):
            MultiMeasureSirum(k=1).mine(
                flights, extra_measures={"Delay": np.ones(14)}
            )

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            MultiMeasureSirum(k=0)
        with pytest.raises(ConfigError):
            MultiMeasureSirum(sample_size=0)
