"""Tests for shared utilities."""

import time

import numpy as np
import pytest

from repro.common.errors import ConfigError, DataError, ReproError
from repro.common.rng import derive_rng, make_rng
from repro.common.timing import Stopwatch, StepTimer


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(DataError, ReproError)


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(5).integers(0, 100, size=10)
        b = make_rng(5).integers(0, 100, size=10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_derive_is_deterministic(self):
        a = derive_rng(make_rng(1), "salt").integers(0, 1000)
        b = derive_rng(make_rng(1), "salt").integers(0, 1000)
        assert a == b

    def test_derive_differs_by_salt(self):
        a = derive_rng(make_rng(1), "x").integers(0, 10**9)
        b = derive_rng(make_rng(1), "y").integers(0, 10**9)
        assert a != b


class TestStopwatch:
    def test_context_manager_measures(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_accumulates_over_restarts(self):
        sw = Stopwatch()
        sw.start()
        sw.stop()
        first = sw.elapsed
        sw.start()
        sw.stop()
        assert sw.elapsed >= first


class TestStepTimer:
    def test_named_accumulation(self):
        timer = StepTimer()
        timer.add("a", 1.0)
        timer.add("a", 0.5)
        timer.add("b", 2.0)
        assert timer.total("a") == pytest.approx(1.5)
        assert timer.total() == pytest.approx(3.5)

    def test_time_context_manager(self):
        timer = StepTimer()
        with timer.time("step"):
            time.sleep(0.005)
        assert timer.total("step") > 0

    def test_merge(self):
        a = StepTimer()
        b = StepTimer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        a.merge(b)
        assert a.total("x") == pytest.approx(3.0)

    def test_as_dict_preserves_order(self):
        timer = StepTimer()
        timer.add("first", 1.0)
        timer.add("second", 1.0)
        assert list(timer.as_dict()) == ["first", "second"]
