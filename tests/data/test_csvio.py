"""Tests for CSV round-tripping."""

import numpy as np
import pytest

from repro.common.errors import DataError
from repro.data.csvio import read_csv, write_csv
from repro.data.generators import flight_table


class TestRoundTrip:
    def test_write_then_read_preserves_rows(self, tmp_path, flights):
        path = tmp_path / "flights.csv"
        write_csv(flights, path)
        back = read_csv(path, measure="Delay")
        assert back.schema == flights.schema
        assert len(back) == len(flights)
        for i in range(len(flights)):
            assert back.decoded_row(i) == flights.decoded_row(i)

    def test_explicit_dimension_subset(self, tmp_path, flights):
        path = tmp_path / "flights.csv"
        write_csv(flights, path)
        back = read_csv(path, measure="Delay", dimensions=["Origin"])
        assert back.schema.dimensions == ("Origin",)
        np.testing.assert_array_equal(back.measure, flights.measure)


class TestValidation:
    def test_missing_measure_column(self, tmp_path, flights):
        path = tmp_path / "flights.csv"
        write_csv(flights, path)
        with pytest.raises(DataError):
            read_csv(path, measure="NoSuchColumn")

    def test_missing_dimension_column(self, tmp_path, flights):
        path = tmp_path / "flights.csv"
        write_csv(flights, path)
        with pytest.raises(DataError):
            read_csv(path, measure="Delay", dimensions=["Nope"])

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            read_csv(path, measure="m")

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,m\nx,1\ny\n")
        with pytest.raises(DataError):
            read_csv(path, measure="m")

    def test_non_numeric_measure(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,m\nx,notanumber\n")
        with pytest.raises(DataError):
            read_csv(path, measure="m")
