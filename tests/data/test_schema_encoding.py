"""Tests for schemas and dictionary encoding."""

import pytest

from repro.common.errors import DataError
from repro.data.encoding import DictionaryEncoder
from repro.data.schema import Schema


class TestSchema:
    def test_basic_properties(self):
        schema = Schema(["a", "b"], "m")
        assert schema.arity == 2
        assert schema.dimension_index("b") == 1

    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(DataError):
            Schema(["a", "a"], "m")

    def test_measure_clash_rejected(self):
        with pytest.raises(DataError):
            Schema(["a"], "a")

    def test_empty_dimensions_rejected(self):
        with pytest.raises(DataError):
            Schema([], "m")

    def test_unknown_dimension_lookup(self):
        with pytest.raises(DataError):
            Schema(["a"], "m").dimension_index("zzz")

    def test_project_keeps_order(self):
        schema = Schema(["a", "b", "c"], "m")
        projected = schema.project(["c", "a"])
        assert projected.dimensions == ("c", "a")
        assert projected.measure == "m"

    def test_equality_and_hash(self):
        assert Schema(["a"], "m") == Schema(["a"], "m")
        assert hash(Schema(["a"], "m")) == hash(Schema(["a"], "m"))
        assert Schema(["a"], "m") != Schema(["b"], "m")


class TestDictionaryEncoder:
    def test_first_seen_order(self):
        enc = DictionaryEncoder()
        assert enc.encode("x") == 0
        assert enc.encode("y") == 1
        assert enc.encode("x") == 0
        assert len(enc) == 2

    def test_decode_round_trip(self):
        enc = DictionaryEncoder()
        for value in ["red", "green", "blue"]:
            code = enc.encode(value)
            assert enc.decode(code) == value

    def test_encode_existing_raises_on_unseen(self):
        enc = DictionaryEncoder()
        enc.encode("known")
        with pytest.raises(DataError):
            enc.encode_existing("unknown")

    def test_decode_out_of_range(self):
        with pytest.raises(DataError):
            DictionaryEncoder().decode(0)

    def test_contains_and_values(self):
        enc = DictionaryEncoder()
        enc.encode("a")
        assert "a" in enc
        assert "b" not in enc
        assert enc.values() == ["a"]
