"""Columnar file format: round trips, statistics, block skipping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DataError
from repro.data.colfile import (
    ColFileHandle,
    block_scan_stats,
    read_colfile,
    scan_colfile,
    write_colfile,
)
from repro.data.generators import flight_table
from repro.data.schema import Schema
from repro.data.table import Table


def tables_equal(a, b):
    if a.schema != b.schema or len(a) != len(b):
        return False
    return all(a.decoded_row(i) == b.decoded_row(i) for i in range(len(a)))


@pytest.fixture
def flights():
    return flight_table()


class TestRoundTrip:
    def test_flight_table_round_trips(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path)
        assert tables_equal(read_colfile(path), flights)

    def test_multi_block_round_trip(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        stats = write_colfile(flights, path, block_rows=4)
        assert len(stats) == 4  # 14 rows in blocks of 4
        assert tables_equal(read_colfile(path), flights)

    def test_single_row_blocks(self, flights, tmp_path):
        path = tmp_path / "tiny.col"
        write_colfile(flights, path, block_rows=1)
        assert tables_equal(read_colfile(path), flights)

    def test_block_rows_validated(self, flights, tmp_path):
        with pytest.raises(DataError):
            write_colfile(flights, tmp_path / "x.col", block_rows=0)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.col"
        path.write_bytes(b"NOPE" + b"\0" * 64)
        with pytest.raises(DataError):
            read_colfile(path)


class TestStatistics:
    def test_stats_bound_block_contents(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        stats = write_colfile(flights, path, block_rows=5)
        measure = np.asarray(flights.measure)
        start = 0
        for stat in stats:
            stop = start + stat["rows"]
            low, high = stat["measure"]
            assert low == measure[start:stop].min()
            assert high == measure[start:stop].max()
            for j in range(flights.schema.arity):
                codes = flights.dimension_columns()[j][start:stop]
                assert stat["dims"][j] == [int(codes.min()), int(codes.max())]
            start = stop


class TestBlockSkipping:
    def test_dim_predicate_scan_is_exact(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=3)
        result = scan_colfile(path, dim_predicates={"Origin": "SF"})
        expected = [
            flights.decoded_row(i)
            for i in range(len(flights))
            if flights.decoded_row(i)[1] == "SF"
        ]
        got = [result.decoded_row(i) for i in range(len(result))]
        assert got == expected

    def test_measure_range_scan_is_exact(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=3)
        result = scan_colfile(path, measure_range=(15.0, 20.0))
        assert len(result) == 5
        assert all(15.0 <= m <= 20.0 for m in result.measure)

    def test_blocks_are_skipped(self, flights, tmp_path):
        # Delays 15..20 cluster in the first rows of the (ordered)
        # flight table, so later blocks are skippable by stats.
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=3)
        read, skipped = block_scan_stats(path, measure_range=(15.0, 20.0))
        assert skipped > 0
        assert read + skipped == 5

    def test_unknown_value_skips_everything(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=3)
        result = scan_colfile(path, dim_predicates={"Origin": "Atlantis"})
        assert len(result) == 0
        read, skipped = block_scan_stats(
            path, dim_predicates={"Origin": "Atlantis"}
        )
        assert read == 0

    def test_unknown_dimension_rejected(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path)
        with pytest.raises(DataError):
            scan_colfile(path, dim_predicates={"Nope": "x"})

    def test_no_predicate_reads_all_blocks(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=3)
        read, skipped = block_scan_stats(path)
        assert (read, skipped) == (5, 0)


class TestEdgeCases:
    def test_empty_table_round_trips(self, tmp_path):
        empty = Table.from_rows(Schema(["x", "y"], "m"), [])
        path = tmp_path / "empty.col"
        stats = write_colfile(empty, path)
        assert stats == []
        loaded = read_colfile(path)
        assert len(loaded) == 0
        assert loaded.schema == empty.schema
        assert block_scan_stats(path) == (0, 0)

    def test_single_block_table(self, flights, tmp_path):
        path = tmp_path / "one.col"
        stats = write_colfile(flights, path, block_rows=1000)
        assert len(stats) == 1
        assert tables_equal(read_colfile(path), flights)

    def test_partial_last_block(self, flights, tmp_path):
        # 14 rows in blocks of 4: the last block holds only 2.
        path = tmp_path / "ragged.col"
        stats = write_colfile(flights, path, block_rows=4)
        assert [s["rows"] for s in stats] == [4, 4, 4, 2]
        assert tables_equal(read_colfile(path), flights)

    def test_predicate_value_absent_from_dictionary(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=3)
        result = scan_colfile(path, dim_predicates={"Origin": "Narnia"})
        assert len(result) == 0
        # Statistics alone prove no block can match.
        assert block_scan_stats(
            path, dim_predicates={"Origin": "Narnia"}
        ) == (0, 5)

    def test_truncated_footer_length_raises(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path)
        data = path.read_bytes()
        path.write_bytes(data[:-2])  # cut into the trailing u32
        with pytest.raises(DataError):
            read_colfile(path)

    def test_corrupt_footer_length_raises(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path)
        data = path.read_bytes()
        # A footer length larger than the file cannot be honoured.
        path.write_bytes(data[:-4] + b"\xff\xff\xff\xff")
        with pytest.raises(DataError):
            read_colfile(path)

    def test_truncated_block_region_raises(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path)
        with ColFileHandle(path) as handle:
            offset = handle.data_offset
        data = path.read_bytes()
        # Drop 40 bytes out of the block region, keeping the preamble
        # and footer intact: the size check must notice.
        path.write_bytes(data[:offset] + data[offset + 40:])
        with pytest.raises(DataError):
            read_colfile(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.col"
        path.write_bytes(b"")
        with pytest.raises(DataError):
            read_colfile(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError):
            read_colfile(tmp_path / "nowhere.col")


class TestColFileHandle:
    def test_encoders_built_once_per_handle(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=3)
        with ColFileHandle(path) as handle:
            before = [id(e) for e in handle.encoders]
            first, _, _ = handle.scan(dim_predicates={"Origin": "SF"})
            second, _, _ = handle.scan(measure_range=(15.0, 20.0))
            assert [id(e) for e in handle.encoders] == before
            # Scan results share the handle's encoders, not copies.
            assert first.encoders()[0] is handle.encoders[0]
            assert second.encoders()[0] is handle.encoders[0]

    def test_block_views_are_zero_copy_and_read_only(self, flights,
                                                     tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=4)
        with ColFileHandle(path) as handle:
            columns, measure = handle.block_views(0)
            assert not measure.flags.writeable
            assert all(not col.flags.writeable for col in columns)
            assert columns[0].dtype == np.int64
            np.testing.assert_array_equal(
                columns[0], flights.dimension_columns()[0][:4]
            )
            np.testing.assert_array_equal(measure, flights.measure[:4])

    def test_read_rows_spanning_blocks(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=4)
        with ColFileHandle(path) as handle:
            columns, measure = handle.read_rows(2, 11)
            np.testing.assert_array_equal(
                measure, np.asarray(flights.measure)[2:11]
            )
            for got, full in zip(columns, flights.dimension_columns()):
                np.testing.assert_array_equal(got, full[2:11])

    def test_read_rows_bounds_checked(self, flights, tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path)
        with ColFileHandle(path) as handle:
            with pytest.raises(DataError):
                handle.read_rows(0, len(flights) + 1)

    def test_scan_stats_never_touches_payload(self, flights, tmp_path):
        # Scribble over the whole block region (footer untouched):
        # footer-only statistics must still come back intact.
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=3)
        with ColFileHandle(path) as handle:
            data_offset, num_rows = handle.data_offset, handle.num_rows
            row_bytes = handle.row_bytes
        data = bytearray(path.read_bytes())
        end = data_offset + num_rows * row_bytes
        data[data_offset:end] = b"\xa5" * (end - data_offset)
        path.write_bytes(bytes(data))
        read, skipped = block_scan_stats(path, measure_range=(15.0, 20.0))
        assert skipped > 0
        assert read + skipped == 5


# ----------------------------------------------------------------------
# Property-based round trips
# ----------------------------------------------------------------------

ROWS = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(0, 5),
        st.floats(-100, 100, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=50,
)


@given(ROWS, st.integers(1, 7))
@settings(max_examples=40, deadline=None)
def test_round_trip_any_table(tmp_path_factory, rows, block_rows):
    table = Table.from_rows(Schema(["x", "y"], "m"), rows)
    path = tmp_path_factory.mktemp("colfile") / "t.col"
    write_colfile(table, path, block_rows=block_rows)
    assert tables_equal(read_colfile(path), table)


@given(ROWS, st.sampled_from(["a", "b", "c", "d"]))
@settings(max_examples=40, deadline=None)
def test_predicate_scan_equals_filter(tmp_path_factory, rows, value):
    table = Table.from_rows(Schema(["x", "y"], "m"), rows)
    path = tmp_path_factory.mktemp("colfile") / "t.col"
    write_colfile(table, path, block_rows=3)
    result = scan_colfile(path, dim_predicates={"x": value})
    expected = [r for r in (table.decoded_row(i) for i in range(len(table)))
                if r[0] == value]
    assert [result.decoded_row(i) for i in range(len(result))] == expected
