"""Tests for the simulated HDFS block store."""

import pytest

from repro.common.errors import DataError
from repro.data.hdfs import SimulatedHdfs


class TestFiles:
    def test_write_read_round_trip(self):
        hdfs = SimulatedHdfs(block_size=100, replication=3)
        hdfs.write("data.csv", 250, payload="hello")
        f = hdfs.read("data.csv")
        assert f.payload == "hello"
        assert f.num_blocks == 3

    def test_read_missing_raises(self):
        with pytest.raises(DataError):
            SimulatedHdfs().read("missing")

    def test_delete_and_exists(self):
        hdfs = SimulatedHdfs()
        hdfs.write("a", 10)
        assert hdfs.exists("a")
        hdfs.delete("a")
        assert not hdfs.exists("a")

    def test_listing_sorted(self):
        hdfs = SimulatedHdfs()
        hdfs.write("b", 1)
        hdfs.write("a", 1)
        assert hdfs.listing() == ["a", "b"]


class TestAccounting:
    def test_writes_count_replicated_bytes(self):
        hdfs = SimulatedHdfs(replication=3)
        hdfs.write("a", 100)
        assert hdfs.bytes_written == 300

    def test_reads_count_single_copy(self):
        hdfs = SimulatedHdfs(replication=3)
        hdfs.write("a", 100)
        hdfs.read("a")
        assert hdfs.bytes_read == 100

    def test_metadata_read_is_free(self):
        hdfs = SimulatedHdfs()
        hdfs.write("a", 100)
        hdfs.read_metadata("a")
        assert hdfs.bytes_read == 0

    def test_reset_counters(self):
        hdfs = SimulatedHdfs()
        hdfs.write("a", 100)
        hdfs.reset_counters()
        assert hdfs.bytes_written == 0

    def test_invalid_configs(self):
        with pytest.raises(DataError):
            SimulatedHdfs(block_size=0)
        with pytest.raises(DataError):
            SimulatedHdfs(replication=0)
        with pytest.raises(DataError):
            SimulatedHdfs().write("a", -1)
