"""Tests for the dataset generators."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core.rule import Rule, WILDCARD
from repro.data.generators import (
    FLIGHT_ROWS,
    SyntheticSpec,
    flight_table,
    gdelt_table,
    generate,
    income_table,
    susy_table,
    tlc_table,
)


class TestFlights:
    def test_matches_thesis_table_1_1(self):
        table = flight_table()
        assert len(table) == 14
        assert table.schema.dimensions == ("Day", "Origin", "Destination")
        assert table.measure.sum() == pytest.approx(145.0)
        assert table.decoded_row(0) == ("Fri", "SF", "London", 20.0)
        assert len(FLIGHT_ROWS) == 14


class TestSynthetic:
    def test_deterministic_per_seed(self):
        spec = SyntheticSpec(num_rows=100, cardinalities=[4, 4, 4])
        a, _ = generate(spec, seed=9)
        b, _ = generate(spec, seed=9)
        for j in a.schema.dimensions:
            np.testing.assert_array_equal(
                a.dimension_column(j), b.dimension_column(j)
            )
        np.testing.assert_array_equal(a.measure, b.measure)

    def test_different_seeds_differ(self):
        spec = SyntheticSpec(num_rows=200, cardinalities=[10, 10])
        a, _ = generate(spec, seed=1)
        b, _ = generate(spec, seed=2)
        assert not np.array_equal(a.measure, b.measure)

    def test_planted_rules_shift_the_measure(self):
        spec = SyntheticSpec(
            num_rows=4000,
            cardinalities=[5, 5, 5],
            skew=0.0,
            num_planted_rules=1,
            planted_arity=1,
            effect_scale=50.0,
            noise_scale=0.1,
        )
        table, planted = generate(spec, seed=3)
        conjunction, effect = planted[0]
        values = [WILDCARD] * 3
        for attr, code in conjunction.items():
            values[attr] = code
        mask = Rule(values).match_mask(table)
        inside = table.measure[mask].mean()
        outside = table.measure[~mask].mean()
        assert inside - outside == pytest.approx(effect, rel=0.25)

    def test_binary_measure_is_binary(self):
        spec = SyntheticSpec(
            num_rows=500,
            cardinalities=[3, 3],
            measure_kind="binary",
            base_measure=0.3,
        )
        table, _ = generate(spec, seed=0)
        assert set(np.unique(table.measure)) <= {0.0, 1.0}

    def test_binary_base_rate_respected(self):
        spec = SyntheticSpec(
            num_rows=8000,
            cardinalities=[3, 3],
            measure_kind="binary",
            base_measure=0.3,
            num_planted_rules=0,
        )
        table, _ = generate(spec, seed=0)
        assert table.measure.mean() == pytest.approx(0.3, abs=0.03)

    def test_invalid_specs(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(num_rows=0, cardinalities=[3])
        with pytest.raises(ConfigError):
            SyntheticSpec(num_rows=5, cardinalities=[])
        with pytest.raises(ConfigError):
            SyntheticSpec(num_rows=5, cardinalities=[3], measure_kind="bogus")
        with pytest.raises(ConfigError):
            SyntheticSpec(
                num_rows=5, cardinalities=[3], measure_kind="binary",
                base_measure=2.0,
            )
        with pytest.raises(ConfigError):
            SyntheticSpec(num_rows=5, cardinalities=[3], planted_arity=2)

    def test_zipf_skew_orders_frequencies(self):
        spec = SyntheticSpec(
            num_rows=20_000, cardinalities=[10], skew=1.2,
            num_planted_rules=0, planted_arity=1,
        )
        table, _ = generate(spec, seed=5)
        counts = np.bincount(table.dimension_column("A0"), minlength=10)
        assert counts[0] > counts[5]


class TestDatasetShapes:
    """Shape parity with thesis §5.1.2."""

    def test_income_shape(self):
        table = income_table(num_rows=300)
        assert table.schema.arity == 9
        assert set(np.unique(table.measure)) <= {0.0, 1.0}

    def test_gdelt_shape(self):
        table = gdelt_table(num_rows=300)
        assert table.schema.arity == 9
        assert table.measure.dtype == np.float64

    def test_susy_shape_and_projections(self):
        table = susy_table(num_rows=300)
        assert table.schema.arity == 18
        assert all(table.domain_size(d) == 3 for d in table.schema.dimensions)
        projected = susy_table(num_rows=300, num_dimensions=10)
        assert projected.schema.arity == 10
        with pytest.raises(ValueError):
            susy_table(num_rows=10, num_dimensions=0)

    def test_tlc_shape(self):
        table = tlc_table(num_rows=300)
        assert table.schema.arity == 9

    def test_relative_default_sizes(self):
        from repro.data.generators.datasets import DEFAULT_ROWS

        assert (
            DEFAULT_ROWS["income"]
            < DEFAULT_ROWS["gdelt"]
            < DEFAULT_ROWS["susy"]
            < DEFAULT_ROWS["tlc"]
        )
