"""Buffer pool over colfile blocks: pinning, eviction, accounting."""

import numpy as np
import pytest

from repro.common.errors import DataError
from repro.data.bufferpool import (
    CAPACITY_ENV_VAR,
    DEFAULT_CAPACITY_BYTES,
    BufferPool,
    default_capacity_bytes,
)
from repro.data.colfile import ColFileHandle, write_colfile
from repro.data.generators import flight_table
from repro.engine.metrics import MetricsRegistry


@pytest.fixture
def handle(tmp_path):
    # 14 rows in blocks of 4 -> 4 blocks; each decoded block is
    # rows * (8 * 3 dims + 8) bytes = 128 B full, 64 B for the last.
    path = tmp_path / "flights.col"
    write_colfile(flight_table(), path, block_rows=4)
    with ColFileHandle(path) as h:
        yield h


class TestCapacityEnv:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(CAPACITY_ENV_VAR, raising=False)
        assert default_capacity_bytes() == DEFAULT_CAPACITY_BYTES

    def test_env_variable_wins(self, monkeypatch):
        monkeypatch.setenv(CAPACITY_ENV_VAR, "262144")
        assert default_capacity_bytes() == 262144
        assert BufferPool().capacity_bytes == 262144

    def test_env_variable_validated(self, monkeypatch):
        monkeypatch.setenv(CAPACITY_ENV_VAR, "lots")
        with pytest.raises(DataError):
            default_capacity_bytes()
        monkeypatch.setenv(CAPACITY_ENV_VAR, "0")
        with pytest.raises(DataError):
            default_capacity_bytes()

    def test_explicit_capacity_validated(self):
        with pytest.raises(DataError):
            BufferPool(capacity_bytes=0)


class TestPinning:
    def test_miss_then_hit(self, handle):
        pool = BufferPool(capacity_bytes=1 << 20)
        with pool.pin(handle, 0) as frame:
            np.testing.assert_array_equal(
                frame.measure, np.asarray(flight_table().measure)[:4]
            )
        with pool.pin(handle, 0):
            pass
        assert (pool.hits, pool.misses) == (1, 1)

    def test_frame_values_match_table(self, handle):
        pool = BufferPool(capacity_bytes=1 << 20)
        table = flight_table()
        with pool.pin(handle, 1) as frame:
            for col, full in zip(frame.columns, table.dimension_columns()):
                np.testing.assert_array_equal(col, full[4:8])

    def test_counters_fold_into_metrics_registry(self, handle):
        metrics = MetricsRegistry()
        pool = BufferPool(capacity_bytes=256, metrics=metrics)
        for index in (0, 1, 0, 2):  # block 2 evicts block 1 (LRU)
            with pool.pin(handle, index):
                pass
        assert metrics.counter("buffer_pool_misses") == 3
        assert metrics.counter("buffer_pool_hits") == 1
        assert metrics.counter("buffer_pool_evictions") == 1

    def test_unpin_without_pin_rejected(self, handle):
        pool = BufferPool(capacity_bytes=1 << 20)
        pinned = pool.pin(handle, 0)
        pinned.__exit__(None, None, None)
        with pytest.raises(DataError):
            pool.unpin(pinned._frame)


class TestEviction:
    def test_lru_eviction_order(self, handle):
        pool = BufferPool(capacity_bytes=256)  # fits two full blocks
        for index in (0, 1):
            with pool.pin(handle, index):
                pass
        with pool.pin(handle, 0):  # refresh block 0
            pass
        with pool.pin(handle, 2):  # evicts block 1
            pass
        assert pool.contains(handle, 0)
        assert not pool.contains(handle, 1)
        assert pool.contains(handle, 2)
        assert pool.evictions == 1

    def test_resident_bytes_bounded(self, handle):
        pool = BufferPool(capacity_bytes=256)
        for _ in range(3):
            for index in range(handle.num_blocks):
                with pool.pin(handle, index):
                    pass
        assert pool.resident_bytes <= 256
        assert pool.evictions > 0

    def test_pinned_blocks_survive_pressure(self, handle):
        pool = BufferPool(capacity_bytes=128)  # fits one full block
        with pool.pin(handle, 0):
            with pool.pin(handle, 1):
                # Both pinned: the pool overcommits rather than
                # evicting under a live pin.
                assert pool.contains(handle, 0)
                assert pool.contains(handle, 1)
                assert pool.resident_bytes > pool.capacity_bytes
        # Pins released: the pool shrinks back within capacity.
        assert pool.resident_bytes <= pool.capacity_bytes

    def test_eviction_refaults_with_identical_values(self, handle):
        pool = BufferPool(capacity_bytes=128)
        with pool.pin(handle, 0) as frame:
            first = [col.copy() for col in frame.columns]
        for index in (1, 2):  # push block 0 out
            with pool.pin(handle, index):
                pass
        assert not pool.contains(handle, 0)
        with pool.pin(handle, 0) as frame:
            for a, b in zip(first, frame.columns):
                np.testing.assert_array_equal(a, b)

    def test_stats_snapshot(self, handle):
        pool = BufferPool(capacity_bytes=256)
        for index in (0, 0, 1):
            with pool.pin(handle, index):
                pass
        stats = pool.stats()
        assert stats["capacity_bytes"] == 256
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["hit_rate"] == pytest.approx(1 / 3)
        assert stats["resident_blocks"] == 2
        assert stats["pinned_blocks"] == 0
        assert stats["resident_bytes"] == pool.resident_bytes

    def test_invalidate_file_drops_unpinned(self, handle):
        pool = BufferPool(capacity_bytes=1 << 20)
        with pool.pin(handle, 0):
            pass
        pool.invalidate_file(handle.path)
        assert not pool.contains(handle, 0)
        assert pool.resident_bytes == 0
