"""Tests for the columnar Table."""

import numpy as np
import pytest

from repro.common.errors import DataError
from repro.data.schema import Schema
from repro.data.table import Table


@pytest.fixture
def schema():
    return Schema(["color", "size"], "price")


@pytest.fixture
def table(schema):
    rows = [
        ("red", "S", 10.0),
        ("blue", "M", 20.0),
        ("red", "L", 30.0),
        ("green", "S", 40.0),
    ]
    return Table.from_rows(schema, rows)


class TestConstruction:
    def test_from_rows_encodes_dimensions(self, table):
        np.testing.assert_array_equal(
            table.dimension_column("color"), [0, 1, 0, 2]
        )
        np.testing.assert_array_equal(table.measure, [10, 20, 30, 40])

    def test_row_width_validated(self, schema):
        with pytest.raises(DataError):
            Table.from_rows(schema, [("red", 1.0)])

    def test_decoded_row_round_trips(self, table):
        assert table.decoded_row(1) == ("blue", "M", 20.0)

    def test_columns_are_read_only(self, table):
        with pytest.raises(ValueError):
            table.measure[0] = 99.0

    def test_iter_encoded(self, table):
        rows = list(table.iter_encoded())
        assert rows[0] == ((0, 0), 10.0)
        assert len(rows) == 4


class TestTransformations:
    def test_take_reorders(self, table):
        sub = table.take([2, 0])
        assert sub.decoded_row(0) == ("red", "L", 30.0)
        assert len(sub) == 2

    def test_slice_is_contiguous(self, table):
        sub = table.slice(1, 3)
        assert len(sub) == 2
        assert sub.decoded_row(0) == ("blue", "M", 20.0)

    def test_sample_without_replacement(self, table, rng):
        sub = table.sample(3, rng)
        assert len(sub) == 3
        originals = {table.decoded_row(i) for i in range(4)}
        for i in range(3):
            assert sub.decoded_row(i) in originals

    def test_sample_too_large_rejected(self, table, rng):
        with pytest.raises(DataError):
            table.sample(5, rng)

    def test_sample_fraction_bounds(self, table, rng):
        with pytest.raises(DataError):
            table.sample_fraction(0.0, rng)
        assert len(table.sample_fraction(0.5, rng)) == 2

    def test_project_keeps_measure(self, table):
        sub = table.project(["size"])
        assert sub.schema.dimensions == ("size",)
        np.testing.assert_array_equal(sub.measure, table.measure)

    def test_with_measure_replaces(self, table):
        new = table.with_measure(np.array([1.0, 1.0, 1.0, 1.0]))
        assert new.measure_sum() == pytest.approx(4.0)
        assert len(new) == 4

    def test_with_measure_length_checked(self, table):
        with pytest.raises(DataError):
            table.with_measure(np.ones(3))


class TestAggregates:
    def test_sums_and_means(self, table):
        assert table.measure_sum() == pytest.approx(100.0)
        assert table.measure_mean() == pytest.approx(25.0)

    def test_mean_of_empty_rejected(self, schema):
        empty = Table.from_rows(schema, [])
        with pytest.raises(DataError):
            empty.measure_mean()

    def test_domain_size(self, table):
        assert table.domain_size("color") == 3
        assert table.domain_size("size") == 3

    def test_estimated_bytes_positive(self, table):
        assert table.estimated_bytes() > 0
