"""Tests for the columnar Table."""

import numpy as np
import pytest

from repro.common.errors import DataError
from repro.data.schema import Schema
from repro.data.table import Table


@pytest.fixture
def schema():
    return Schema(["color", "size"], "price")


@pytest.fixture
def table(schema):
    rows = [
        ("red", "S", 10.0),
        ("blue", "M", 20.0),
        ("red", "L", 30.0),
        ("green", "S", 40.0),
    ]
    return Table.from_rows(schema, rows)


class TestConstruction:
    def test_from_rows_encodes_dimensions(self, table):
        np.testing.assert_array_equal(
            table.dimension_column("color"), [0, 1, 0, 2]
        )
        np.testing.assert_array_equal(table.measure, [10, 20, 30, 40])

    def test_row_width_validated(self, schema):
        with pytest.raises(DataError):
            Table.from_rows(schema, [("red", 1.0)])

    def test_decoded_row_round_trips(self, table):
        assert table.decoded_row(1) == ("blue", "M", 20.0)

    def test_columns_are_read_only(self, table):
        with pytest.raises(ValueError):
            table.measure[0] = 99.0

    def test_iter_encoded(self, table):
        rows = list(table.iter_encoded())
        assert rows[0] == ((0, 0), 10.0)
        assert len(rows) == 4


class TestTransformations:
    def test_take_reorders(self, table):
        sub = table.take([2, 0])
        assert sub.decoded_row(0) == ("red", "L", 30.0)
        assert len(sub) == 2

    def test_slice_is_contiguous(self, table):
        sub = table.slice(1, 3)
        assert len(sub) == 2
        assert sub.decoded_row(0) == ("blue", "M", 20.0)

    def test_sample_without_replacement(self, table, rng):
        sub = table.sample(3, rng)
        assert len(sub) == 3
        originals = {table.decoded_row(i) for i in range(4)}
        for i in range(3):
            assert sub.decoded_row(i) in originals

    def test_sample_too_large_rejected(self, table, rng):
        with pytest.raises(DataError):
            table.sample(5, rng)

    def test_sample_fraction_bounds(self, table, rng):
        with pytest.raises(DataError):
            table.sample_fraction(0.0, rng)
        assert len(table.sample_fraction(0.5, rng)) == 2

    def test_project_keeps_measure(self, table):
        sub = table.project(["size"])
        assert sub.schema.dimensions == ("size",)
        np.testing.assert_array_equal(sub.measure, table.measure)

    def test_with_measure_replaces(self, table):
        new = table.with_measure(np.array([1.0, 1.0, 1.0, 1.0]))
        assert new.measure_sum() == pytest.approx(4.0)
        assert len(new) == 4

    def test_with_measure_length_checked(self, table):
        with pytest.raises(DataError):
            table.with_measure(np.ones(3))


class TestAggregates:
    def test_sums_and_means(self, table):
        assert table.measure_sum() == pytest.approx(100.0)
        assert table.measure_mean() == pytest.approx(25.0)

    def test_mean_of_empty_rejected(self, schema):
        empty = Table.from_rows(schema, [])
        with pytest.raises(DataError):
            empty.measure_mean()

    def test_domain_size(self, table):
        assert table.domain_size("color") == 3
        assert table.domain_size("size") == 3

    def test_estimated_bytes_positive(self, table):
        assert table.estimated_bytes() > 0


class TestFileBackedTable:
    """Table.open_colfile: out-of-core mode over the colfile format."""

    @pytest.fixture
    def colpath(self, tmp_path):
        from repro.data.colfile import write_colfile
        from repro.data.generators import flight_table

        path = tmp_path / "flights.col"
        write_colfile(flight_table(), path, block_rows=4)
        return path

    def test_metadata_without_materializing(self, colpath):
        from repro.data.generators import flight_table

        plain = flight_table()
        table = Table.open_colfile(colpath)
        assert len(table) == len(plain)
        assert table.num_rows == plain.num_rows
        assert table.schema == plain.schema
        assert table.estimated_bytes() == plain.estimated_bytes()
        assert not table.is_materialized

    def test_columns_identical_to_in_ram(self, colpath):
        from repro.data.generators import flight_table

        plain = flight_table()
        table = Table.open_colfile(colpath)
        for got, want in zip(table.dimension_columns(),
                             plain.dimension_columns()):
            np.testing.assert_array_equal(got, want)
            assert got.dtype == np.int64
        np.testing.assert_array_equal(table.measure, plain.measure)
        assert table.is_materialized

    def test_materializing_streams_through_pool(self, colpath):
        # Pool smaller than one decoded block still completes: blocks
        # stream through (pin, copy out, evict) one at a time.
        table = Table.open_colfile(colpath, capacity_bytes=130)
        table.dimension_columns()
        pool = table.buffer_pool
        assert pool.misses == 4
        assert pool.evictions >= 2
        assert pool.resident_bytes <= pool.capacity_bytes

    def test_scan_with_pushdown(self, colpath):
        from repro.data.generators import flight_table

        plain = flight_table()
        table = Table.open_colfile(colpath)
        result = table.scan(dim_predicates={"Origin": "SF"})
        expected = [plain.decoded_row(i) for i in range(len(plain))
                    if plain.decoded_row(i)[1] == "SF"]
        got = [result.decoded_row(i) for i in range(len(result))]
        assert got == expected
        read, skipped = table.scan_stats(dim_predicates={"Origin": "SF"})
        assert read + skipped == 4
        assert table.buffer_pool.misses == read

    def test_derived_tables_are_plain_in_ram(self, colpath):
        from repro.data.table import FileBackedTable

        table = Table.open_colfile(colpath)
        assert type(table.take([0, 1])) is Table
        assert type(table.slice(0, 3)) is Table
        assert type(table.with_measure(np.zeros(len(table)))) is Table
        assert isinstance(table, FileBackedTable)

    def test_partition_blocks_match_in_ram(self, colpath):
        from repro.data.generators import flight_table

        plain = flight_table()
        table = Table.open_colfile(colpath)
        ours = table.partition_blocks(3)
        theirs = plain.partition_blocks(3)
        assert [(b.index, b.start, b.stop, b.size_bytes) for b in ours] == [
            (b.index, b.start, b.stop, b.size_bytes) for b in theirs
        ]
        for a, b in zip(ours, theirs):
            np.testing.assert_array_equal(a.measure, b.measure)

    def test_shared_partitions_are_mmap_backed(self, colpath):
        from repro.engine.shm import MmapTableBlock

        table = Table.open_colfile(colpath)
        blocks = table.partition_blocks(3, shared=True)
        assert all(isinstance(b, MmapTableBlock) for b in blocks)
        # No shm copy of the table was (or will be) made for these.
        assert table._shm_pack is None

    def test_empty_colfile_opens(self, tmp_path):
        from repro.data.colfile import write_colfile

        path = tmp_path / "empty.col"
        write_colfile(Table.from_rows(Schema(["x"], "m"), []), path)
        table = Table.open_colfile(path)
        assert len(table) == 0
        assert len(table.measure) == 0
        with pytest.raises(DataError):
            table.partition_blocks(2, shared=True)
