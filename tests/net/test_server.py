"""End-to-end server behaviour: parity, tenants, coalescing, errors."""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.common.errors import (
    FrameTooLargeError,
    ProtocolError,
    ResultTimeoutError,
    ServiceError,
    TenantQuotaError,
)
from repro.net import TenantPolicy
from repro.net.protocol import (
    KIND_ERROR,
    KIND_REQUEST,
    FrameDecoder,
    encode_frame,
)

from .conftest import MINE_PARAMS


def assert_mining_results_identical(a, b):
    """The acceptance bar: bit-identical rules/lambdas/estimates."""
    assert [tuple(m.rule.values) for m in a.rule_set] == [
        tuple(m.rule.values) for m in b.rule_set
    ]
    assert [(int(m.count), float(m.avg_measure)) for m in a.rule_set] == [
        (int(m.count), float(m.avg_measure)) for m in b.rule_set
    ]
    assert np.array_equal(a.lambdas, b.lambdas)
    assert np.array_equal(a.estimates, b.estimates)
    assert list(a.kl_trace) == list(b.kl_trace)


class TestWireParity:
    def test_mine_over_wire_is_bit_identical(self, serve_stack, connect):
        service, server = serve_stack()
        client = connect(server)
        local = service.mine("flights", **MINE_PARAMS)
        remote = client.mine("flights", **MINE_PARAMS)
        assert_mining_results_identical(local, remote)
        # The reconstructed result is a full MiningResult, not a stub.
        assert remote.information_gain == local.information_gain
        assert remote.metrics["counters"] == local.metrics["counters"]
        assert remote.config.k == MINE_PARAMS["k"]

    def test_query_over_wire_matches_in_process(self, serve_stack,
                                                connect):
        service, server = serve_stack()
        client = connect(server)
        sql = ("SELECT origin, COUNT(*) AS c, AVG(delay) AS a "
               "FROM flights GROUP BY origin ORDER BY c DESC, origin")
        local = service.query(sql)
        remote = client.query(sql)
        assert remote.columns == local.columns
        assert remote.rows == local.rows

    def test_sql_miner_engine_over_wire(self, serve_stack, connect):
        service, server = serve_stack()
        client = connect(server)
        local = service.mine("flights", k=2, engine="sql")
        remote = client.mine("flights", k=2, engine="sql")
        assert [tuple(m.rule.values) for m in local.rule_set] == [
            tuple(m.rule.values) for m in remote.rule_set
        ]
        assert np.array_equal(local.estimates, remote.estimates)
        assert list(local.kl_trace) == list(remote.kl_trace)
        assert remote.queries_issued == local.queries_issued

    def test_submit_poll_result_lifecycle(self, serve_stack, connect):
        _, server = serve_stack()
        client = connect(server)
        job = client.submit_mine("flights", **MINE_PARAMS)
        deadline = time.monotonic() + 20.0
        while not job.done():
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert job.result(timeout=5.0) is not None

    def test_second_request_hits_the_result_cache(self, serve_stack,
                                                  connect):
        _, server = serve_stack()
        client = connect(server)
        client.mine("flights", **MINE_PARAMS)
        again = client.submit_mine("flights", **MINE_PARAMS)
        assert again.cache_hit
        assert again.result(timeout=5.0) is not None


class TestTenants:
    def test_quota_enforced_per_tenant(self, serve_stack, connect,
                                       worker_gate):
        service, server = serve_stack(
            num_workers=1,
            tenants={"a": TenantPolicy(max_inflight=2),
                     "b": TenantPolicy(max_inflight=8)},
        )
        gate = worker_gate(service)
        alice = connect(server, tenant="a")
        bob = connect(server, tenant="b")
        # Distinct jobs (per-seed) so nothing coalesces; the gated
        # worker keeps them all in flight.
        alice.submit_mine("flights", k=3, sample_size=16, seed=101)
        alice.submit_mine("flights", k=3, sample_size=16, seed=102)
        with pytest.raises(TenantQuotaError):
            alice.submit_mine("flights", k=3, sample_size=16, seed=103)
        # Tenant b is unaffected by a's full quota.
        bob.submit_mine("flights", k=3, sample_size=16, seed=104)
        stats = alice.stats()["net"]
        assert stats["quota_rejections"] == 1
        assert stats["tenants"]["a"]["inflight"] == 2
        assert stats["tenants"]["a"]["quota_rejections"] == 1
        assert stats["tenants"]["b"]["inflight"] == 1
        gate.set()

    def test_quota_releases_on_completion(self, serve_stack, connect,
                                          worker_gate):
        service, server = serve_stack(
            num_workers=1, tenants={"a": TenantPolicy(max_inflight=1)},
        )
        gate = worker_gate(service)
        client = connect(server, tenant="a")
        job = client.submit_mine("flights", k=3, sample_size=16, seed=7)
        with pytest.raises(TenantQuotaError):
            client.submit_mine("flights", k=3, sample_size=16, seed=8)
        gate.set()
        job.result(timeout=20.0)
        # Slot freed: the next submission is admitted.
        retry = client.submit_mine("flights", k=3, sample_size=16, seed=8)
        assert retry.result(timeout=20.0) is not None

    def test_quota_spans_connections_of_one_tenant(self, serve_stack,
                                                   connect, worker_gate):
        service, server = serve_stack(
            num_workers=1, tenants={"a": TenantPolicy(max_inflight=1)},
        )
        gate = worker_gate(service)
        first = connect(server, tenant="a")
        second = connect(server, tenant="a")
        first.submit_mine("flights", k=3, sample_size=16, seed=1)
        with pytest.raises(TenantQuotaError):
            second.submit_mine("flights", k=3, sample_size=16, seed=2)
        gate.set()

    def test_tenant_priority_feeds_admission_queue(self, serve_stack,
                                                   connect, worker_gate):
        from repro.service.jobs import PRIORITY_HIGH

        service, server = serve_stack(
            num_workers=1,
            tenants={"vip": TenantPolicy(max_inflight=8,
                                         priority="high"),
                     "batch": TenantPolicy(max_inflight=8,
                                           priority="low")},
        )
        gate = worker_gate(service)
        batch = connect(server, tenant="batch")
        vip = connect(server, tenant="vip")
        slow = batch.submit_mine("flights", k=3, sample_size=16, seed=11)
        fast = vip.submit_mine("flights", k=3, sample_size=16, seed=12)
        # While the gate holds the single worker, both jobs sit in the
        # admission heap: the vip job (submitted second) is at the root
        # because its tenant's priority class outranks batch.
        with service._scheduler._lock:
            heap = list(service._scheduler._heap)
        assert len(heap) == 2
        assert min(heap)[0] == PRIORITY_HIGH
        gate.set()
        fast.result(timeout=20.0)
        slow.result(timeout=20.0)


class TestCoalescing:
    def test_identical_requests_across_connections_coalesce(
            self, serve_stack, connect, worker_gate):
        service, server = serve_stack(num_workers=1)
        gate = worker_gate(service)
        first = connect(server)
        second = connect(server)
        job_a = first.submit_mine("flights", **MINE_PARAMS)
        job_b = second.submit_mine("flights", **MINE_PARAMS)
        assert job_b.job_id == job_a.job_id
        assert job_b.net_coalesced
        stats = first.stats()["net"]
        assert stats["coalesce_hits"] >= 1
        gate.set()
        result_a = job_a.result(timeout=20.0)
        result_b = job_b.result(timeout=20.0)
        assert_mining_results_identical(result_a, result_b)
        # One service job served both submissions.
        assert service.stats()["jobs"]["completed"] == 1

    def test_acceptance_eight_clients_two_tenants(self, serve_stack,
                                                  connect, flights):
        """ISSUE acceptance: 8 concurrent wire clients, 2 tenants —
        quota enforcement and coalescing hits visible in stats()["net"],
        all delivered results bit-identical to in-process."""
        service, server = serve_stack(
            num_workers=2,
            tenants={"a": TenantPolicy(max_inflight=1),
                     "b": TenantPolicy(max_inflight=8)},
        )
        reference = service.mine("flights", **MINE_PARAMS)
        results = [None] * 8
        rejections = [0] * 8
        errors = []

        def run_client(i):
            tenant = "a" if i % 2 == 0 else "b"
            try:
                client = connect(server, tenant=tenant)
                for attempt in range(60):
                    try:
                        job = client.submit_mine("flights", **MINE_PARAMS)
                        results[i] = job.result(timeout=30.0)
                        return
                    except TenantQuotaError:
                        rejections[i] += 1
                        time.sleep(0.02)
                errors.append("client %d never got through" % i)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=run_client, args=(i,),
                                    daemon=True) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert not errors, errors
        assert all(result is not None for result in results)
        for result in results:
            assert_mining_results_identical(reference, result)
        net = service.stats()["net"]
        # 8 identical concurrent requests: the protocol layer coalesced
        # (or the cache served) all but the leaders...
        assert net["coalesce_hits"] + sum(
            1 for r in results if r is not None
        ) >= 8
        assert net["coalesce_hits"] >= 1
        # ...and tenant a's one-slot quota pushed back at least once
        # (4 clients, 1 slot), visible per-tenant and in the totals.
        assert net["quota_rejections"] == sum(rejections)
        assert net["tenants"]["a"]["quota_rejections"] >= 1
        assert net["tenants"]["a"]["inflight"] == 0
        assert net["tenants"]["b"]["inflight"] == 0


class TestDisconnects:
    def test_abrupt_disconnect_mid_job_completes_and_caches(
            self, serve_stack, connect, worker_gate):
        service, server = serve_stack(num_workers=1)
        gate = worker_gate(service)
        doomed = connect(server)
        doomed.submit_mine("flights", **MINE_PARAMS)
        doomed._sock.close()  # abrupt: no goodbye, job is in flight
        doomed._sock = None
        gate.set()
        deadline = time.monotonic() + 20.0
        while service.stats()["jobs"]["completed"] < 1:
            assert time.monotonic() < deadline, "orphaned job never ran"
            time.sleep(0.02)
        # The orphan's result landed in the cache: a new client gets it
        # without re-execution, and no tenant slot leaked.
        survivor = connect(server)
        job = survivor.submit_mine("flights", **MINE_PARAMS)
        assert job.cache_hit
        assert job.result(timeout=5.0) is not None
        net = survivor.stats()["net"]
        assert all(t["inflight"] == 0 for t in net["tenants"].values())

    def test_result_wait_deadline(self, serve_stack, connect,
                                  worker_gate):
        service, server = serve_stack(num_workers=1)
        gate = worker_gate(service)
        client = connect(server)
        job = client.submit_mine("flights", **MINE_PARAMS)
        with pytest.raises(ResultTimeoutError):
            job.result(timeout=0.3)
        gate.set()
        assert job.result(timeout=20.0) is not None


class TestWireErrors:
    def test_unknown_dataset_raises_same_type_as_in_process(
            self, serve_stack, connect):
        service, server = serve_stack()
        client = connect(server)
        with pytest.raises(ServiceError, match="unknown dataset"):
            client.submit_mine("nope", **MINE_PARAMS)
        with pytest.raises(ServiceError, match="unknown dataset"):
            service.submit_mine("nope", **MINE_PARAMS)

    def test_unknown_op_is_a_protocol_error(self, serve_stack, connect):
        _, server = serve_stack()
        client = connect(server)
        with pytest.raises(ProtocolError, match="unknown op"):
            client._call("frobnicate", {})
        # The connection survived the bad op.
        assert client.stats()["net"]["connections"] >= 1

    def test_oversized_request_rejected_connection_survives(
            self, serve_stack, connect):
        _, server = serve_stack(max_frame_bytes=2048)
        client = connect(server)
        with pytest.raises(FrameTooLargeError):
            client.submit_query("SELECT '%s' FROM flights"
                                % ("x" * 4096))
        # Same socket still serves requests afterwards.
        assert client.query(
            "SELECT COUNT(*) FROM flights", timeout=10.0
        ).scalar() == 14

    def test_unknown_protocol_version_answered_then_closed(
            self, serve_stack):
        _, server = serve_stack()
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            frame = bytearray(encode_frame(KIND_REQUEST, 1,
                                           {"op": "stats"}))
            frame[0] = 99  # future protocol version
            sock.sendall(bytes(frame))
            decoder = FrameDecoder()
            events = []
            while not events:
                data = sock.recv(65536)
                assert data, "server closed without answering"
                events = decoder.feed(data)
            assert events[0].kind == KIND_ERROR
            assert "version" in events[0].payload["message"]
            # ...and then the stream ends: the connection is dead.
            sock.settimeout(5.0)
            while True:
                tail = sock.recv(65536)
                if not tail:
                    break

    def test_non_request_frame_from_client_rejected(self, serve_stack):
        from repro.net.protocol import KIND_RESPONSE

        _, server = serve_stack()
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.sendall(encode_frame(KIND_RESPONSE, 5, {}))
            decoder = FrameDecoder()
            events = []
            while not events:
                data = sock.recv(65536)
                assert data
                events = decoder.feed(data)
            assert events[0].kind == KIND_ERROR
            assert events[0].request_id == 5


class TestStats:
    def test_net_section_shape(self, serve_stack, connect):
        _, server = serve_stack()
        client = connect(server, tenant="alice")
        client.query("SELECT COUNT(*) FROM flights")
        stats = client.stats()
        net = stats["net"]
        assert net["listening"]
        assert not net["draining"]
        assert net["connections"] == 1
        assert net["connections_opened"] >= 1
        assert net["frames_in"] >= 2
        assert net["frames_out"] >= 2
        assert net["jobs_submitted"] == 1
        assert net["jobs_completed"] == 1
        assert net["tenants"]["alice"]["submitted"] == 1
        assert net["tenants"]["alice"]["max_inflight"] == 8
        # The wire stats payload carries the regular sections too.
        assert "jobs" in stats and "budget" in stats

    def test_in_process_stats_show_net_section_too(self, serve_stack):
        service, server = serve_stack()
        assert service.stats()["net"]["listening"]

    def test_net_section_detaches_on_stop(self, serve_stack):
        service, server = serve_stack()
        server.stop()
        assert "net" not in service.stats()
