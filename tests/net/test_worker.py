"""Remote shard worker: loopback execution of real placed shards.

A :class:`~repro.net.worker.ShardWorker` on 127.0.0.1 receives pickled
kernels plus :class:`~repro.engine.shm.MmapTableBlock` shard
descriptors of a real colfile and executes them through the same task
body process-pool workers use — so these tests drive the entire remote
leg end-to-end over real sockets: attach, stage batches, charge
records, failure semantics and the full mining bit-identity check
against a serial run.
"""

import pickle

import numpy as np
import pytest

from repro.common.errors import DataError, EngineError, ProtocolError
from repro.core.config import variant_config
from repro.core.miner import Sirum, make_default_cluster
from repro.data.colfile import write_colfile
from repro.data.generators import flight_table
from repro.data.table import Table
from repro.net.worker import ShardWorker, ShardWorkerClient, parse_address


@pytest.fixture(scope="module")
def flights():
    return flight_table()


@pytest.fixture
def file_table(flights, tmp_path):
    path = tmp_path / "flights.col"
    write_colfile(flights, path, block_rows=64)
    return Table.open_colfile(path)


@pytest.fixture
def worker():
    with ShardWorker() as w:
        yield w


@pytest.fixture
def client(worker):
    with ShardWorkerClient(worker.address) as c:
        yield c


def _sum_kernel(tc, part):
    """Module-level (picklable) kernel: sum one shard's measure."""
    tc.add_records(part.num_rows)
    return float(np.sum(part.measure))


def _boom_kernel(tc, part):
    raise ValueError("boom on shard %d" % part.index)


class TestWorkerOps:
    def test_hello_reports_identity(self, client):
        hello = client.hello()
        assert hello["ok"]
        assert hello["pid"] > 0
        assert hello["stages"] == 0
        assert "attachments" in hello

    def test_attach_verifies_the_colfile(self, client, file_table):
        handle = file_table._handle
        reply = client.attach(handle.path, handle.file_key)
        assert reply["ok"]
        assert reply["num_rows"] == len(file_table)
        assert reply["num_blocks"] == handle.num_blocks

    def test_attach_refuses_a_stale_file_key(self, client, file_table):
        handle = file_table._handle
        stale = (handle.file_key[0], handle.file_key[1] + 1)
        with pytest.raises(DataError):
            client.attach(handle.path, stale)

    def test_unknown_op_is_a_protocol_error(self, client):
        with pytest.raises(ProtocolError, match="unknown worker op"):
            client._call("launch_missiles", {})

    def test_address_parsing(self):
        assert parse_address("127.0.0.1:7731") == ("127.0.0.1", 7731)
        assert parse_address(("h", 9)) == ("h", 9)
        with pytest.raises(EngineError):
            parse_address("no-port")
        with pytest.raises(EngineError):
            parse_address("host:http")

    def test_unreachable_worker_is_an_engine_error(self):
        client = ShardWorkerClient("127.0.0.1:1", timeout=0.5)
        with pytest.raises(EngineError, match="cannot reach"):
            client.hello()


class TestRunStage:
    def _shard_batch(self, file_table, num_shards=2):
        blocks = file_table.partition_blocks(num_shards, shared=True)
        return [
            (block.index, pickle.dumps(block, pickle.HIGHEST_PROTOCOL))
            for block in blocks
        ]

    def test_executes_real_shards_end_to_end(self, client, file_table,
                                             flights):
        kernel_bytes = pickle.dumps(_sum_kernel, pickle.HIGHEST_PROTOCOL)
        batch = self._shard_batch(file_table)
        records, failures = client.run_stage(kernel_bytes, batch)
        assert failures == []
        assert sorted(records) == [0, 1]
        outputs = [records[i][0] for i in sorted(records)]
        assert sum(outputs) == pytest.approx(float(np.sum(flights.measure)))
        # The charge records carry the per-task accounting back —
        # (ops, light_ops, records, disk_bytes, output_bytes, cache
        # requests), with ``records`` charged per shard row.
        charges = [records[i][1] for i in sorted(records)]
        shard_rows = [
            s.num_rows for s in file_table.shard_map(len(batch))
        ]
        assert [c[2] for c in charges] == shard_rows
        assert client.hello()["stages"] == 1

    def test_kernel_failure_travels_back_typed(self, client, file_table):
        kernel_bytes = pickle.dumps(_boom_kernel, pickle.HIGHEST_PROTOCOL)
        records, failures = client.run_stage(
            kernel_bytes, self._shard_batch(file_table)
        )
        assert records == {}
        # The batch stopped at its first (lowest-index) failure.
        assert len(failures) == 1
        index, exc, is_pickling = failures[0]
        assert index == 0
        assert not is_pickling
        assert isinstance(exc, ValueError)
        assert "boom on shard 0" in str(exc)


class TestRemoteMining:
    def test_remote_cluster_matches_serial_on_a_colfile(self, file_table,
                                                        flights, worker):
        def run(table, **cluster_kwargs):
            cluster = make_default_cluster(
                num_executors=2, cores_per_executor=2, **cluster_kwargs
            )
            try:
                config = variant_config("optimized", k=3, sample_size=16,
                                        seed=0)
                return Sirum(config).mine(table, cluster=cluster)
            finally:
                cluster.close()

        serial = run(flights, parallelism=1)
        remote = run(file_table, executor="remote",
                     workers=[worker.address])
        assert [tuple(m.rule.values) for m in serial.rule_set] == [
            tuple(m.rule.values) for m in remote.rule_set
        ]
        assert np.array_equal(serial.lambdas, remote.lambdas)
        assert serial.kl_trace == remote.kl_trace
        assert serial.metrics == remote.metrics
        assert worker.stats()["stages"] > 0
