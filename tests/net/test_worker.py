"""Remote shard worker: loopback execution of real placed shards.

A :class:`~repro.net.worker.ShardWorker` on 127.0.0.1 receives pickled
kernels plus :class:`~repro.engine.shm.MmapTableBlock` shard
descriptors of a real colfile and executes them through the same task
body process-pool workers use — so these tests drive the entire remote
leg end-to-end over real sockets: attach, stage batches, charge
records, failure semantics and the full mining bit-identity check
against a serial run.
"""

import pickle

import numpy as np
import pytest

from repro.common.errors import DataError, EngineError, ProtocolError
from repro.core.config import variant_config
from repro.core.miner import Sirum, make_default_cluster
from repro.data.colfile import write_colfile
from repro.data.generators import flight_table
from repro.data.table import Table
from repro.net.worker import ShardWorker, ShardWorkerClient, parse_address


@pytest.fixture(scope="module")
def flights():
    return flight_table()


@pytest.fixture
def file_table(flights, tmp_path):
    path = tmp_path / "flights.col"
    write_colfile(flights, path, block_rows=64)
    return Table.open_colfile(path)


@pytest.fixture
def worker():
    with ShardWorker() as w:
        yield w


@pytest.fixture
def client(worker):
    with ShardWorkerClient(worker.address) as c:
        yield c


def _sum_kernel(tc, part):
    """Module-level (picklable) kernel: sum one shard's measure."""
    tc.add_records(part.num_rows)
    return float(np.sum(part.measure))


def _boom_kernel(tc, part):
    raise ValueError("boom on shard %d" % part.index)


class TestWorkerOps:
    def test_hello_reports_identity(self, client):
        hello = client.hello()
        assert hello["ok"]
        assert hello["pid"] > 0
        assert hello["stages"] == 0
        assert "attachments" in hello

    def test_attach_verifies_the_colfile(self, client, file_table):
        handle = file_table._handle
        reply = client.attach(handle.path, handle.file_key)
        assert reply["ok"]
        assert reply["num_rows"] == len(file_table)
        assert reply["num_blocks"] == handle.num_blocks

    def test_attach_refuses_a_stale_file_key(self, client, file_table):
        handle = file_table._handle
        stale = (handle.file_key[0], handle.file_key[1] + 1)
        with pytest.raises(DataError):
            client.attach(handle.path, stale)

    def test_unknown_op_is_a_protocol_error(self, client):
        with pytest.raises(ProtocolError, match="unknown worker op"):
            client._call("launch_missiles", {})

    def test_address_parsing(self):
        assert parse_address("127.0.0.1:7731") == ("127.0.0.1", 7731)
        assert parse_address(("h", 9)) == ("h", 9)
        with pytest.raises(EngineError):
            parse_address("no-port")
        with pytest.raises(EngineError):
            parse_address("host:http")

    def test_unreachable_worker_is_an_engine_error(self):
        client = ShardWorkerClient("127.0.0.1:1", timeout=0.5)
        with pytest.raises(EngineError, match="cannot reach"):
            client.hello()


class TestRunStage:
    def _shard_batch(self, file_table, num_shards=2):
        blocks = file_table.partition_blocks(num_shards, shared=True)
        return [
            (block.index, pickle.dumps(block, pickle.HIGHEST_PROTOCOL))
            for block in blocks
        ]

    def test_executes_real_shards_end_to_end(self, client, file_table,
                                             flights):
        kernel_bytes = pickle.dumps(_sum_kernel, pickle.HIGHEST_PROTOCOL)
        batch = self._shard_batch(file_table)
        records, failures = client.run_stage(kernel_bytes, batch)
        assert failures == []
        assert sorted(records) == [0, 1]
        outputs = [records[i][0] for i in sorted(records)]
        assert sum(outputs) == pytest.approx(float(np.sum(flights.measure)))
        # The charge records carry the per-task accounting back —
        # (ops, light_ops, records, disk_bytes, output_bytes, cache
        # requests), with ``records`` charged per shard row.
        charges = [records[i][1] for i in sorted(records)]
        shard_rows = [
            s.num_rows for s in file_table.shard_map(len(batch))
        ]
        assert [c[2] for c in charges] == shard_rows
        assert client.hello()["stages"] == 1

    def test_kernel_failure_travels_back_typed(self, client, file_table):
        kernel_bytes = pickle.dumps(_boom_kernel, pickle.HIGHEST_PROTOCOL)
        records, failures = client.run_stage(
            kernel_bytes, self._shard_batch(file_table)
        )
        assert records == {}
        # The batch stopped at its first (lowest-index) failure.
        assert len(failures) == 1
        index, exc, is_pickling = failures[0]
        assert index == 0
        assert not is_pickling
        assert isinstance(exc, ValueError)
        assert "boom on shard 0" in str(exc)


class TestRemoteMining:
    def test_remote_cluster_matches_serial_on_a_colfile(self, file_table,
                                                        flights, worker):
        def run(table, **cluster_kwargs):
            cluster = make_default_cluster(
                num_executors=2, cores_per_executor=2, **cluster_kwargs
            )
            try:
                config = variant_config("optimized", k=3, sample_size=16,
                                        seed=0)
                return Sirum(config).mine(table, cluster=cluster)
            finally:
                cluster.close()

        serial = run(flights, parallelism=1)
        remote = run(file_table, executor="remote",
                     workers=[worker.address])
        assert [tuple(m.rule.values) for m in serial.rule_set] == [
            tuple(m.rule.values) for m in remote.rule_set
        ]
        assert np.array_equal(serial.lambdas, remote.lambdas)
        assert serial.kl_trace == remote.kl_trace
        assert serial.metrics == remote.metrics
        assert worker.stats()["stages"] > 0

def _slow_once_kernel(tc, part):
    """Sleeps on its first-ever invocation (module global), so exactly
    one worker of a fleet hangs past a short client deadline."""
    import time

    if _SLOW_ONCE and _SLOW_ONCE.pop() == "armed":
        time.sleep(1.5)
    tc.add_records(1)
    return part * 10


_SLOW_ONCE = []


def _mine(table, **cluster_kwargs):
    cluster = make_default_cluster(
        num_executors=2, cores_per_executor=2, **cluster_kwargs
    )
    try:
        config = variant_config("optimized", k=3, sample_size=16, seed=0)
        result = Sirum(config).mine(table, cluster=cluster)
        return result, cluster.placement_stats()
    finally:
        cluster.close()


def _assert_identical(a, b):
    assert [tuple(m.rule.values) for m in a.rule_set] == [
        tuple(m.rule.values) for m in b.rule_set
    ]
    assert np.array_equal(a.lambdas, b.lambdas)
    assert a.kl_trace == b.kl_trace
    assert a.metrics == b.metrics


class TestHeartbeat:
    def test_heartbeat_answers_while_alive(self, client):
        assert client.heartbeat() is True
        assert client.healthy

    def test_heartbeat_of_a_dead_worker_is_false(self):
        client = ShardWorkerClient("127.0.0.1:1", timeout=0.5)
        assert client.heartbeat(timeout=0.5) is False

    def test_heartbeat_restores_the_call_timeout(self, client):
        before = client.timeout
        client.heartbeat(timeout=0.25)
        assert client.timeout == before

    def test_mark_dead_flags_and_disconnects(self, client):
        client.hello()
        client.mark_dead()
        assert not client.healthy
        assert client._sock is None


class TestWorkerBlockCache:
    def test_miss_then_hit(self):
        from repro.net.worker import WorkerBlockCache

        cache = WorkerBlockCache(capacity_bytes=1024)
        key = ("f.col", (1, 2), 0)
        assert cache.get(key) is None
        cache.put(key, b"x" * 10)
        assert cache.get(key) == b"x" * 10
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["fetched_bytes"] == 10
        assert stats["resident_bytes"] == 10

    def test_evicts_coldest_when_over_capacity(self):
        from repro.net.worker import WorkerBlockCache

        cache = WorkerBlockCache(capacity_bytes=25)
        for i in range(3):
            cache.put(("f", (1, 2), i), bytes(10))
        # 30 bytes inserted into 25: block 0 (coldest) was evicted.
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["blocks"] == 2
        assert stats["resident_bytes"] == 20
        assert cache.get(("f", (1, 2), 0)) is None
        assert cache.get(("f", (1, 2), 2)) is not None

    def test_touch_refreshes_recency(self):
        from repro.net.worker import WorkerBlockCache

        cache = WorkerBlockCache(capacity_bytes=25)
        cache.put(("f", (1, 2), 0), bytes(10))
        cache.put(("f", (1, 2), 1), bytes(10))
        assert cache.get(("f", (1, 2), 0)) is not None  # 0 now warmest
        cache.put(("f", (1, 2), 2), bytes(10))
        assert cache.get(("f", (1, 2), 1)) is None  # 1 was coldest
        assert cache.get(("f", (1, 2), 0)) is not None

    def test_oversized_block_is_never_cached(self):
        from repro.net.worker import WorkerBlockCache

        cache = WorkerBlockCache(capacity_bytes=8)
        cache.put(("f", (1, 2), 0), bytes(100))
        assert cache.stats()["blocks"] == 0
        assert cache.stats()["fetched_bytes"] == 100

    def test_env_override_and_validation(self, monkeypatch):
        from repro.net.worker import default_block_cache_bytes

        monkeypatch.setenv("REPRO_WORKER_BLOCK_CACHE_BYTES", "4096")
        assert default_block_cache_bytes() == 4096
        monkeypatch.setenv("REPRO_WORKER_BLOCK_CACHE_BYTES", "nope")
        with pytest.raises(EngineError):
            default_block_cache_bytes()
        monkeypatch.setenv("REPRO_WORKER_BLOCK_CACHE_BYTES", "0")
        with pytest.raises(EngineError):
            default_block_cache_bytes()

    def test_timeout_env_override(self, monkeypatch):
        from repro.net.worker import default_worker_timeout

        monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "7.5")
        assert default_worker_timeout() == 7.5
        monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "-1")
        with pytest.raises(EngineError):
            default_worker_timeout()


class TestBlockShipping:
    """The shared-nothing leg: workers fetch colfile blocks from the
    driver instead of their own filesystem."""

    def test_shared_nothing_worker_mines_a_deleted_colfile(
            self, flights, tmp_path):
        # The driver writes a colfile, opens it, deletes it.  A worker
        # with local_files=False can only get the bytes over the wire
        # — from the driver's still-live mmap.
        import os

        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=64)
        file_table = Table.open_colfile(path)
        os.unlink(path)
        serial, _ = _mine(flights, parallelism=1)
        with ShardWorker(local_files=False) as worker:
            remote, pstats = _mine(file_table, executor="remote",
                                   workers=[worker.address])
            wstats = worker.stats()
        _assert_identical(serial, remote)
        assert pstats["bytes_shipped"] > 0
        assert pstats["blocks_shipped"] >= 1
        cache = wstats["block_cache"]
        assert cache["fetched_bytes"] == pstats["bytes_shipped"]
        # Repeat stages over the same dataset version hit warm cache.
        assert cache["hits"] > 0

    def test_worker_in_a_different_directory_no_shared_paths(
            self, flights, tmp_path, monkeypatch):
        # Worker process serves from a different working directory and
        # the colfile path is *relative* — unresolvable on the worker
        # side even though driver and worker share a machine.  The
        # worker must take the block_fetch path, not the filesystem.
        import os

        driver_dir = tmp_path / "driver"
        worker_dir = tmp_path / "worker"
        driver_dir.mkdir()
        worker_dir.mkdir()
        monkeypatch.chdir(driver_dir)
        write_colfile(flights, "flights.col", block_rows=64)
        file_table = Table.open_colfile("flights.col")
        serial, _ = _mine(flights, parallelism=1)
        with ShardWorker(local_files=False) as worker:
            monkeypatch.chdir(worker_dir)
            remote, pstats = _mine(file_table, executor="remote",
                                   workers=[worker.address])
        _assert_identical(serial, remote)
        assert pstats["bytes_shipped"] > 0

    def test_attach_is_refused_without_local_files(self, flights,
                                                   tmp_path):
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=64)
        file_table = Table.open_colfile(path)
        handle = file_table._handle
        with ShardWorker(local_files=False) as worker:
            with ShardWorkerClient(worker.address) as client:
                with pytest.raises(EngineError, match="local_files"):
                    client.attach(handle.path, handle.file_key)

    def test_remote_colfile_reads_bit_identically(self, flights,
                                                  tmp_path):
        # Drive RemoteColFile directly against a live client-served
        # worker via a real stage, comparing raw reads per shard.
        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=64)
        file_table = Table.open_colfile(path)
        blocks = file_table.partition_blocks(3, shared=True)
        kernel_bytes = pickle.dumps(_raw_read_kernel,
                                    pickle.HIGHEST_PROTOCOL)
        batch = [
            (block.index, pickle.dumps(block, pickle.HIGHEST_PROTOCOL))
            for block in blocks
        ]
        with ShardWorker(local_files=False) as worker:
            with ShardWorkerClient(worker.address) as client:
                records, failures = client.run_stage(kernel_bytes, batch)
        assert failures == []
        for block in blocks:
            cols, measure = records[block.index][0]
            assert measure.tobytes() == block.measure.tobytes()
            for remote_col, local_col in zip(cols, block.columns):
                assert remote_col.tobytes() == local_col.tobytes()


def _raw_read_kernel(tc, part):
    """Return the shard's raw column/measure arrays for comparison."""
    tc.add_records(part.num_rows)
    return [np.array(c) for c in part.columns], np.array(part.measure)


def _identity_kernel(tc, part):
    tc.add_records(1)
    return part


class TestWorkerFailure:
    """Fault injection: dead and hung workers mid-job."""

    def test_killed_worker_shards_replace_onto_survivor(self, flights):
        def run(kill=None, **cluster_kwargs):
            cluster = make_default_cluster(
                num_executors=2, cores_per_executor=2, **cluster_kwargs
            )
            try:
                # A warm-up stage lands shards on every worker (both
                # modes, so simulated metrics stay comparable); then
                # the kill fires and mining must re-place.
                outs = cluster.run_stage(_identity_kernel, [1, 2, 3, 4])
                assert outs.outputs == [1, 2, 3, 4]
                if kill is not None:
                    kill()
                config = variant_config("optimized", k=3,
                                        sample_size=16, seed=0)
                result = Sirum(config).mine(flights, cluster=cluster)
                return result, cluster.placement_stats()
            finally:
                cluster.close()

        serial, _ = run(parallelism=1)
        w1 = ShardWorker().start()
        w2 = ShardWorker().start()
        try:
            remote, pstats = run(
                kill=w2.stop, executor="remote",
                workers=[w1.address, w2.address],
            )
        finally:
            w1.stop()
            w2.stop()
        _assert_identical(serial, remote)
        assert pstats["worker_failures"] >= 1
        assert pstats["rebalances"] >= 1
        assert pstats["healthy_workers"] == 1

    def test_hung_worker_times_out_and_replaces(self, flights,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "0.4")
        _SLOW_ONCE.clear()
        _SLOW_ONCE.append("armed")
        w1 = ShardWorker().start()
        w2 = ShardWorker().start()
        try:
            cluster = make_default_cluster(
                num_executors=2, cores_per_executor=2,
                executor="remote", workers=[w1.address, w2.address],
            )
            try:
                result = cluster.run_stage(
                    _slow_once_kernel, [1, 2, 3, 4]
                )
                pstats = cluster.placement_stats()
            finally:
                cluster.close()
        finally:
            w1.stop()
            w2.stop()
        # One worker hung past the 0.4s deadline; its shards re-ran on
        # the survivor and the stage still resolved correctly.
        assert result.outputs == [10, 20, 30, 40]
        assert pstats["worker_failures"] >= 1
        assert pstats["healthy_workers"] == 1

    def test_all_workers_dead_degrades_to_local_threads(self, flights):
        serial, _ = _mine(flights, parallelism=1)
        w1 = ShardWorker().start()
        w1.stop()
        cluster = make_default_cluster(
            num_executors=2, cores_per_executor=2,
            executor="remote", workers=[w1.address],
        )
        try:
            config = variant_config("optimized", k=3, sample_size=16,
                                    seed=0)
            remote = Sirum(config).mine(flights, cluster=cluster)
            assert cluster.fallback_stages > 0
        finally:
            cluster.close()
        _assert_identical(serial, remote)

    def test_kernel_failure_contract_survives_a_death(self):
        # Worker death and a kernel failure in the same stage: the
        # lowest-index kernel exception must still surface once every
        # lower shard has resolved.
        w1 = ShardWorker().start()
        w2 = ShardWorker().start()
        try:
            cluster = make_default_cluster(
                num_executors=2, cores_per_executor=2,
                executor="remote", workers=[w1.address, w2.address],
            )
            try:
                assert cluster.run_stage(
                    _identity_kernel, [0, 1]
                ).outputs == [0, 1]
                w2.stop()
                with pytest.raises(ValueError, match="boom on shard"):
                    cluster.run_stage(
                        _boom_block_kernel, list(range(4))
                    )
                assert cluster.placement_stats()["worker_failures"] >= 1
            finally:
                cluster.close()
        finally:
            w1.stop()
            w2.stop()


def _boom_block_kernel(tc, part):
    raise ValueError("boom on shard %d" % part)
