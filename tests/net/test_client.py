"""Client behaviour: reconnect-and-retry, the async client, errors."""

import asyncio
import socket

import pytest

from repro.common.errors import (
    ReproError,
    ServiceClosedError,
    ServiceError,
)
from repro.net import AsyncServiceClient, ServiceClient

from .conftest import MINE_PARAMS
from .test_server import assert_mining_results_identical


class TestReconnect:
    def test_call_retries_once_after_connection_loss(self, serve_stack,
                                                     connect):
        _, server = serve_stack()
        client = connect(server)
        assert client.query("SELECT COUNT(*) FROM flights").scalar() == 14
        # Kill the socket out from under the client: the next call
        # transparently reconnects and succeeds.
        client._sock.shutdown(socket.SHUT_RDWR)
        assert client.query("SELECT COUNT(*) FROM flights").scalar() == 14

    def test_reconnect_repeats_the_tenant_hello(self, serve_stack,
                                                connect):
        _, server = serve_stack()
        client = connect(server, tenant="alice")
        client.query("SELECT COUNT(*) FROM flights")
        client._sock.shutdown(socket.SHUT_RDWR)
        client.query("SELECT COUNT(*) FROM flights")
        # Both submissions were attributed to the tenant, so the hello
        # was re-sent on the new connection.
        tenants = client.stats()["net"]["tenants"]
        assert tenants["alice"]["submitted"] == 2

    def test_job_ids_survive_reconnect(self, serve_stack, connect):
        """The job registry is server-global, not per-connection."""
        _, server = serve_stack()
        client = connect(server)
        job = client.submit_mine("flights", **MINE_PARAMS)
        client._sock.shutdown(socket.SHUT_RDWR)
        assert client.result(job.job_id, timeout=20.0) is not None

    def test_reconnect_disabled_surfaces_the_loss(self, serve_stack):
        _, server = serve_stack()
        client = ServiceClient("127.0.0.1", server.port,
                               reconnect=False, timeout=5.0)
        try:
            client._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises(ServiceError, match="lost"):
                client.stats()
        finally:
            client.close()

    def test_stopped_server_maps_to_service_closed(self, serve_stack,
                                                   connect):
        _, server = serve_stack()
        client = connect(server)
        client.query("SELECT COUNT(*) FROM flights")
        server.stop()
        with pytest.raises((ServiceClosedError, ServiceError)):
            client.stats()


class TestErrorMapping:
    def test_unknown_dataset_is_a_service_error(self, serve_stack,
                                                connect):
        _, server = serve_stack()
        client = connect(server)
        with pytest.raises(ServiceError):
            client.submit_mine("missing", **MINE_PARAMS)

    def test_sql_errors_arrive_typed(self, serve_stack, connect):
        _, server = serve_stack()
        client = connect(server)
        with pytest.raises(ReproError, match="nope"):
            client.query("SELECT nope FROM flights", timeout=20.0)

    def test_bad_mining_params_arrive_typed(self, serve_stack, connect):
        _, server = serve_stack()
        client = connect(server)
        with pytest.raises(ServiceError, match="engine"):
            client.submit_mine("flights", engine="quantum")


class TestAsyncClient:
    def test_async_mine_matches_sync(self, serve_stack, connect):
        service, server = serve_stack()
        reference = service.mine("flights", **MINE_PARAMS)

        async def run():
            client = await AsyncServiceClient.connect(
                "127.0.0.1", server.port, tenant="async"
            )
            try:
                result = await client.mine("flights", **MINE_PARAMS)
                rows = await client.query(
                    "SELECT COUNT(*) FROM flights"
                )
                stats = await client.stats()
                return result, rows, stats
            finally:
                await client.close()

        result, rows, stats = asyncio.run(run())
        assert_mining_results_identical(reference, result)
        assert rows.scalar() == 14
        # Two submissions (the mine and the query), both attributed.
        assert stats["net"]["tenants"]["async"]["submitted"] == 2

    def test_async_submit_poll_result(self, serve_stack):
        _, server = serve_stack()

        async def run():
            client = await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            )
            try:
                submitted = await client.submit_mine("flights",
                                                     **MINE_PARAMS)
                while not (await client.poll(submitted["job_id"]))["done"]:
                    await asyncio.sleep(0.02)
                return await client.result(submitted["job_id"])
            finally:
                await client.close()

        assert asyncio.run(run()) is not None

    def test_async_errors_arrive_typed(self, serve_stack):
        _, server = serve_stack()

        async def run():
            client = await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            )
            try:
                with pytest.raises(ServiceError):
                    await client.submit_mine("missing", **MINE_PARAMS)
            finally:
                await client.close()

        asyncio.run(run())
