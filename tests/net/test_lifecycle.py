"""Graceful shutdown: drain mode must lose zero accepted jobs."""

import socket
import threading
import time

import pytest

from repro.common.errors import ServiceClosedError

from .conftest import MINE_PARAMS
from .test_server import assert_mining_results_identical


def wait_until(predicate, timeout=5.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "%s never held" % what
        time.sleep(0.01)


class TestDrain:
    def test_drain_flushes_inflight_and_loses_nothing(
            self, serve_stack, connect, worker_gate):
        service, server = serve_stack(num_workers=1)
        # An independent stack computes the reference result, so the
        # parity check below is not a result-cache tautology.
        ref_service, _ = serve_stack(num_workers=1)
        reference = ref_service.mine("flights", **MINE_PARAMS)

        gate = worker_gate(service)
        busy = connect(server)
        idle = connect(server)
        job = busy.submit_mine("flights", **MINE_PARAMS)

        drained = []
        drainer = threading.Thread(
            target=lambda: drained.append(server.drain(timeout=30.0)),
            daemon=True,
        )
        drainer.start()
        wait_until(lambda: server.net_stats()["draining"],
                   what="draining flag")

        # The idle connection is told to go away...
        assert idle.next_event(timeout=5.0)["type"] == "goaway"
        # ...the busy one keeps its seat but new work is refused...
        with pytest.raises(ServiceClosedError):
            busy.submit_mine("flights", k=2, sample_size=16, seed=99)
        # ...and the listener is gone: no new connections.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", server.port),
                                     timeout=2.0)

        gate.set()
        drainer.join(30.0)
        assert drained == [True]

        # The accepted job survived the drain, bit-identically.
        result = job.result(timeout=10.0)
        assert_mining_results_identical(reference, result)
        assert service.stats()["jobs"]["completed"] == 1
        net = server.net_stats()
        assert net["jobs_submitted"] == 1
        assert net["jobs_completed"] == 1

    def test_drain_timeout_reports_false_but_job_still_lands(
            self, serve_stack, connect, worker_gate):
        service, server = serve_stack(num_workers=1)
        gate = worker_gate(service)
        client = connect(server)
        job = client.submit_mine("flights", **MINE_PARAMS)
        assert server.drain(timeout=0.2) is False
        gate.set()
        # Even a timed-out drain never discards the accepted job.
        assert job.result(timeout=20.0) is not None

    def test_drain_with_no_work_is_immediate(self, serve_stack,
                                             connect):
        _, server = serve_stack()
        client = connect(server)
        client.query("SELECT COUNT(*) FROM flights")
        assert server.drain(timeout=5.0) is True

    def test_subscribed_session_is_not_told_to_go_away(
            self, serve_stack, connect, worker_gate):
        service, server = serve_stack(num_workers=1)
        gate = worker_gate(service)
        watcher = connect(server)
        watcher.subscribe()
        submitter = connect(server)
        job = submitter.submit_mine("flights", **MINE_PARAMS)

        drainer = threading.Thread(target=server.drain, daemon=True)
        drainer.start()
        wait_until(lambda: server.net_stats()["draining"],
                   what="draining flag")
        gate.set()
        drainer.join(30.0)
        # The watcher stayed connected through the drain and saw the
        # job-completion event rather than a GOAWAY.
        event = watcher.next_event(timeout=10.0)
        assert event["type"] == "event"
        assert event["job_id"] == job.job_id
        assert event["ok"]


class TestStream:
    def test_subscriber_sees_completion_events(self, serve_stack,
                                               connect):
        _, server = serve_stack()
        watcher = connect(server)
        assert watcher.subscribe()["subscribed"]
        submitter = connect(server)
        job = submitter.submit_mine("flights", **MINE_PARAMS)
        event = watcher.next_event(timeout=20.0)
        assert event["type"] == "event"
        assert event["job_id"] == job.job_id
        assert event["ok"]
        assert event["label"] == "mine:flights"
        # Unsubscribing stops the stream.
        assert not watcher.subscribe(False)["subscribed"]

    def test_failed_job_event_carries_the_error(self, serve_stack,
                                                connect):
        _, server = serve_stack()
        watcher = connect(server)
        watcher.subscribe()
        submitter = connect(server)
        job = submitter.submit_query("SELECT nope FROM flights")
        event = watcher.next_event(timeout=20.0)
        assert event["type"] == "event"
        assert event["job_id"] == job.job_id
        assert not event["ok"]
        assert event["error"]["code"] >= 1
        assert event["error"]["message"]


class TestStop:
    def test_stop_closes_the_port_but_not_the_service(self, serve_stack,
                                                      connect):
        service, server = serve_stack()
        client = connect(server)
        assert client.query("SELECT COUNT(*) FROM flights").scalar() == 14
        server.stop()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", server.port),
                                     timeout=2.0)
        # The in-process facade outlives its front door.
        assert service.query("SELECT COUNT(*) FROM flights").scalar() == 14

    def test_stop_is_idempotent(self, serve_stack):
        _, server = serve_stack()
        server.stop()
        server.stop()

    def test_stop_with_blocked_result_waiters_does_not_hang(
            self, serve_stack, connect, worker_gate):
        """Waiter threads blocked in result() must not wedge stop()."""
        service, server = serve_stack(num_workers=1)
        gate = worker_gate(service)
        client = connect(server)
        job = client.submit_mine("flights", **MINE_PARAMS)

        failure = []

        def wait_forever():
            try:
                job.result(timeout=30.0)
            except Exception as exc:  # expected: server went away
                failure.append(exc)

        waiter = threading.Thread(target=wait_forever, daemon=True)
        waiter.start()
        time.sleep(0.2)  # let the result op reach its blocking wait
        started = time.monotonic()
        server.stop()
        assert time.monotonic() - started < 15.0
        gate.set()
        waiter.join(10.0)
        assert not waiter.is_alive()
