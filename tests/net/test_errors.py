"""The wire error-code registry: stable codes, typed round-trips."""

import pytest

from repro.common import errors
from repro.common.errors import (
    WIRE_ERROR_CODES,
    ReproError,
    ServiceError,
    from_wire,
    to_wire,
    wire_code,
)


class TestRegistry:
    def test_codes_are_unique(self):
        codes = list(WIRE_ERROR_CODES.values())
        assert len(codes) == len(set(codes))

    def test_every_exported_error_class_has_a_code(self):
        """New error types must be added to the registry."""
        exported = [
            obj for obj in vars(errors).values()
            if isinstance(obj, type) and issubclass(obj, ReproError)
        ]
        missing = [cls.__name__ for cls in exported
                   if cls not in WIRE_ERROR_CODES]
        assert not missing, "errors without wire codes: %s" % missing

    def test_known_codes_are_stable(self):
        """Spot-pin codes that clients in the wild depend on."""
        assert WIRE_ERROR_CODES[errors.ReproError] == 1
        assert WIRE_ERROR_CODES[errors.ServiceError] == 10
        assert WIRE_ERROR_CODES[errors.QueueFullError] == 11
        assert WIRE_ERROR_CODES[errors.DeadlineExceededError] == 12
        assert WIRE_ERROR_CODES[errors.ServiceClosedError] == 13
        assert WIRE_ERROR_CODES[errors.ProtocolError] == 20


class TestRoundTrip:
    @pytest.mark.parametrize(
        "cls", sorted(WIRE_ERROR_CODES, key=lambda c: c.__name__),
        ids=lambda c: c.__name__,
    )
    def test_every_registered_class_round_trips(self, cls):
        original = cls("something went wrong: %s" % cls.__name__)
        payload = to_wire(original)
        assert payload["code"] == WIRE_ERROR_CODES[cls]
        assert payload["error"] == cls.__name__
        rebuilt = from_wire(payload)
        assert type(rebuilt) is cls
        assert str(rebuilt) == str(original)

    def test_unregistered_subclass_maps_to_ancestor(self):
        class CustomServiceError(ServiceError):
            pass

        payload = to_wire(CustomServiceError("boom"))
        assert payload["code"] == WIRE_ERROR_CODES[ServiceError]
        rebuilt = from_wire(payload)
        assert type(rebuilt) is ServiceError
        assert "boom" in str(rebuilt)

    def test_sql_errors_map_through_the_hierarchy(self):
        from repro.sql.errors import SqlSyntaxError

        payload = to_wire(SqlSyntaxError("bad query", position=3))
        assert payload["code"] == WIRE_ERROR_CODES[ReproError]
        assert isinstance(from_wire(payload), ReproError)

    def test_foreign_exception_maps_to_base(self):
        payload = to_wire(ValueError("not ours"))
        assert payload["code"] == WIRE_ERROR_CODES[ReproError]
        assert "not ours" in str(from_wire(payload))

    def test_unknown_code_degrades_to_base_error(self):
        rebuilt = from_wire({
            "code": 99999, "error": "FutureError", "message": "hi",
        })
        assert type(rebuilt) is ReproError
        assert "FutureError" in str(rebuilt)
        assert "hi" in str(rebuilt)

    def test_wire_code_accepts_instances_and_classes(self):
        assert wire_code(ServiceError) == wire_code(ServiceError("x"))
