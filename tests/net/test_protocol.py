"""Framing edge cases: the decoder must survive hostile byte streams."""

import struct

import pytest

from repro.common.errors import FrameTooLargeError, ProtocolError
from repro.net.protocol import (
    HEADER_BYTES,
    KIND_ERROR,
    KIND_EVENT,
    KIND_GOAWAY,
    KIND_REQUEST,
    KIND_RESPONSE,
    PROTOCOL_VERSION,
    Frame,
    FrameDecoder,
    FrameError,
    encode_frame,
)


def decode_all(data, **kwargs):
    return FrameDecoder(**kwargs).feed(data)


class TestRoundTrip:
    def test_encode_decode(self):
        payload = {"op": "stats", "nested": {"a": [1, 2.5, None, "x"]}}
        events = decode_all(encode_frame(KIND_REQUEST, 7, payload))
        assert len(events) == 1
        frame = events[0]
        assert isinstance(frame, Frame)
        assert frame.kind == KIND_REQUEST
        assert frame.request_id == 7
        assert frame.payload == payload

    @pytest.mark.parametrize("kind", [
        KIND_REQUEST, KIND_RESPONSE, KIND_ERROR, KIND_EVENT, KIND_GOAWAY,
    ])
    def test_all_kinds(self, kind):
        (frame,) = decode_all(encode_frame(kind, 1, {}))
        assert frame.kind == kind

    def test_float_payloads_round_trip_bit_exactly(self):
        values = [0.1, 1e-300, 1e300, 2.0 ** -1074, 3.141592653589793]
        (frame,) = decode_all(encode_frame(KIND_RESPONSE, 1,
                                           {"v": values}))
        assert frame.payload["v"] == values
        assert [v.hex() for v in frame.payload["v"]] == [
            v.hex() for v in values
        ]

    def test_numpy_scalars_serialize(self):
        import numpy as np

        (frame,) = decode_all(encode_frame(KIND_RESPONSE, 1, {
            "i": np.int64(7), "f": np.float64(2.5), "b": np.bool_(True),
        }))
        assert frame.payload == {"i": 7, "f": 2.5, "b": True}

    def test_unserializable_payload_raises_typed(self):
        with pytest.raises(ProtocolError):
            encode_frame(KIND_REQUEST, 1, {"bad": object()})


class TestPartialFrames:
    """A frame may arrive split across arbitrary TCP segment bounds."""

    def test_byte_at_a_time(self):
        data = encode_frame(KIND_REQUEST, 42, {"op": "poll", "job_id": 3})
        decoder = FrameDecoder()
        events = []
        for i in range(len(data)):
            events.extend(decoder.feed(data[i:i + 1]))
            if i < len(data) - 1:
                assert not events, "frame completed early at byte %d" % i
        assert len(events) == 1
        assert events[0].payload["job_id"] == 3

    def test_split_inside_header(self):
        data = encode_frame(KIND_REQUEST, 1, {"x": 1})
        decoder = FrameDecoder()
        assert decoder.feed(data[:HEADER_BYTES - 3]) == []
        (frame,) = decoder.feed(data[HEADER_BYTES - 3:])
        assert frame.payload == {"x": 1}

    def test_many_frames_in_one_chunk(self):
        chunk = b"".join(
            encode_frame(KIND_REQUEST, i, {"i": i}) for i in range(5)
        )
        events = decode_all(chunk)
        assert [f.request_id for f in events] == list(range(5))

    def test_frame_boundary_straddles_chunks(self):
        a = encode_frame(KIND_REQUEST, 1, {"i": 1})
        b = encode_frame(KIND_REQUEST, 2, {"i": 2})
        decoder = FrameDecoder()
        events = decoder.feed(a + b[:5])
        assert len(events) == 1
        events.extend(decoder.feed(b[5:]))
        assert [f.request_id for f in events] == [1, 2]


class TestOversizedFrames:
    def test_encode_refuses_oversized(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame(KIND_REQUEST, 1, {"x": "y" * 100},
                         max_frame_bytes=32)

    def test_decoder_skips_and_survives(self):
        """Oversized frame: typed error, then later frames still parse."""
        big = encode_frame(KIND_REQUEST, 9, {"x": "y" * 1000})
        after = encode_frame(KIND_REQUEST, 10, {"ok": True})
        decoder = FrameDecoder(max_frame_bytes=64)
        events = decoder.feed(big + after)
        assert len(events) == 2
        assert isinstance(events[0], FrameError)
        assert events[0].request_id == 9
        assert isinstance(events[0].exception, FrameTooLargeError)
        assert isinstance(events[1], Frame)
        assert events[1].payload == {"ok": True}

    def test_oversized_payload_drained_incrementally(self):
        big = encode_frame(KIND_REQUEST, 9, {"x": "y" * 1000})
        decoder = FrameDecoder(max_frame_bytes=64)
        events = []
        for i in range(0, len(big), 17):
            events.extend(decoder.feed(big[i:i + 17]))
        assert len(events) == 1
        assert isinstance(events[0], FrameError)
        # The decoder never buffered the oversized payload.
        assert len(decoder._buffer) == 0


class TestMalformedFrames:
    def test_unknown_version_is_fatal(self):
        data = bytearray(encode_frame(KIND_REQUEST, 1, {}))
        data[0] = PROTOCOL_VERSION + 1
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="version"):
            decoder.feed(bytes(data))
        # Fatal means fatal: the stream stays poisoned.
        with pytest.raises(ProtocolError):
            decoder.feed(encode_frame(KIND_REQUEST, 2, {}))

    def test_unknown_kind_is_recoverable(self):
        body = b"{}"
        header = struct.pack(">BBHII", PROTOCOL_VERSION, 99, 0, 5,
                             len(body))
        events = decode_all(header + body
                            + encode_frame(KIND_REQUEST, 6, {}))
        assert isinstance(events[0], FrameError)
        assert events[0].request_id == 5
        assert isinstance(events[1], Frame)

    def test_nonzero_flags_rejected(self):
        body = b"{}"
        header = struct.pack(">BBHII", PROTOCOL_VERSION, KIND_REQUEST,
                             0xBEEF, 5, len(body))
        (event,) = decode_all(header + body)
        assert isinstance(event, FrameError)

    def test_malformed_json_is_recoverable(self):
        body = b"{not json"
        header = struct.pack(">BBHII", PROTOCOL_VERSION, KIND_REQUEST,
                             0, 3, len(body))
        events = decode_all(header + body
                            + encode_frame(KIND_REQUEST, 4, {"ok": 1}))
        assert isinstance(events[0], FrameError)
        assert events[0].request_id == 3
        assert events[1].payload == {"ok": 1}
