"""Shared fixtures for the network front-door tests.

Every test here boots a real server on an ephemeral localhost port and
talks to it over real sockets.  Concurrency tests reuse the service
suite's :class:`Deadline` budget idea (see ``tests/service/conftest``)
via generous per-call timeouts instead of unbounded waits.

``worker_gate`` is the determinism trick: with a single-worker service,
submitting one job that blocks on an Event occupies the worker, so
subsequent submissions *stay queued* (in flight) until the test
releases the gate — making quota, coalescing and drain windows exact
instead of racy.
"""

import threading

import pytest

from repro.data.generators import flight_table
from repro.net import NetConfig, ServiceClient, ServiceServer
from repro.service import Job, RuleMiningService, ServiceConfig

#: One canonical mining request, reused so tests coalesce predictably.
MINE_PARAMS = {"k": 3, "variant": "optimized", "sample_size": 16,
               "seed": 0}


@pytest.fixture(scope="module")
def flights():
    return flight_table()


@pytest.fixture
def serve_stack(flights):
    """Factory booting (service, server) pairs, torn down afterwards."""
    created = []

    def boot(num_workers=2, register=True, service_config=None,
             **net_kwargs):
        config = service_config or ServiceConfig(num_workers=num_workers)
        service = RuleMiningService(config)
        if register:
            service.register_dataset("flights", flights)
        net_kwargs.setdefault("port", 0)
        server = ServiceServer(service, NetConfig(**net_kwargs))
        server.start()
        created.append((service, server))
        return service, server

    yield boot
    for service, server in created:
        server.stop()
        service.close(wait=False)


@pytest.fixture
def connect():
    """Client factory; closes every client at teardown."""
    clients = []

    def _connect(server, **kwargs):
        kwargs.setdefault("timeout", 30.0)
        client = ServiceClient("127.0.0.1", server.port, **kwargs)
        clients.append(client)
        return client

    yield _connect
    for client in clients:
        client.close()


@pytest.fixture
def worker_gate():
    """Occupy a single-worker service's worker until released."""
    gates = []

    def block(service):
        gate = threading.Event()
        started = threading.Event()

        def blocker():
            started.set()
            gate.wait(30.0)

        service._scheduler.submit(Job(blocker, label="test-gate"))
        assert started.wait(5.0), "gate job never started"
        gates.append(gate)
        return gate

    yield block
    for gate in gates:
        gate.set()
