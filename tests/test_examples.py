"""Every example script must run cleanly end to end.

Examples are the documentation users actually execute; each one is run
in-process (not via subprocess, so coverage and errors surface
normally) with stdout captured and spot-checked.
"""

import contextlib
import importlib.util
import io
import sys
from pathlib import Path

import pytest

#: Long-running suite: excluded from the fast loop (-m 'not slow').
pytestmark = pytest.mark.slow


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (script, fragments its output must contain)
EXPECTED = {
    "quickstart.py": ["Informative rule set", "London"],
    "sql_session.py": ["CUBE", "rule set (thesis Table 1.2)"],
    "service_session.py": ["cache hits", "coalesced", "service drained"],
    "net_client.py": ["serving on 127.0.0.1", "bit-identical",
                      "cache_hit=True", "server drained"],
    "cube_algorithms.py": ["Iceberg pruning", "[ok]"],
    "cleaning_comparison.py": ["Data Auditor", "aggregator7"],
    "data_cleaning.py": [],
    "cube_exploration.py": [],
    "scalability_tour.py": [],
    "streaming_rules.py": [],
}


def run_example(name):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        "example_%s" % name.replace(".py", ""), path
    )
    module = importlib.util.module_from_spec(spec)
    captured = io.StringIO()
    with contextlib.redirect_stdout(captured):
        spec.loader.exec_module(module)
        module.main()
    return captured.getvalue()


def test_every_example_is_listed():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED), (
        "examples/ and tests/test_examples.py disagree: %s"
        % sorted(on_disk ^ set(EXPECTED))
    )


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_example_runs(name):
    output = run_example(name)
    assert output.strip(), "%s printed nothing" % name
    for fragment in EXPECTED[name]:
        assert fragment in output, (
            "%s output missing %r" % (name, fragment)
        )
