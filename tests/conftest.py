"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.miner import make_default_cluster
from repro.data.generators import flight_table, gdelt_table, income_table


@pytest.fixture
def flights():
    """The 14-row worked example of thesis Table 1.1."""
    return flight_table()


@pytest.fixture
def small_gdelt():
    """A small GDELT-shaped table for integration tests."""
    return gdelt_table(num_rows=800)


@pytest.fixture
def small_income():
    """A small binary-measure table for integration tests."""
    return income_table(num_rows=800)


@pytest.fixture
def cluster():
    """A fresh small cluster per test (metrics start at zero)."""
    return make_default_cluster(num_executors=2, cores_per_executor=2)


@pytest.fixture
def rng():
    return np.random.default_rng(42)
