"""Tests for the RuleMiningService façade.

Concurrency invariants under test: concurrent submits return exactly
the results serial execution returns, duplicate in-flight requests
coalesce onto one execution, cached results invalidate when a dataset
is re-registered, and overload surfaces as typed errors.
"""

import threading

import pytest

from repro.bench.harness import (
    build_service_workload,
    run_serial_reference,
    run_service_workload,
    service_results_match,
)
from repro.common.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
)
from repro.core.miner import mine
from repro.service import (
    Job,
    RuleMiningService,
    ServiceConfig,
    mining_fingerprint,
    sql_fingerprint,
)


@pytest.fixture
def service(flights):
    svc = RuleMiningService(ServiceConfig(num_workers=4))
    svc.register_dataset("flights", flights)
    yield svc
    svc.close()


def block_all_workers(svc, deadline):
    """Occupy every worker so subsequent submissions stay queued."""
    release = threading.Event()
    gates = []
    for _ in range(svc.config.num_workers):
        gate = threading.Event()

        def blocker(gate=gate):
            gate.set()
            release.wait(30.0)

        svc._scheduler.submit(Job(blocker, label="blocker"))
        gates.append(gate)
    for gate in gates:
        assert gate.wait(deadline.remaining())
    return release


class TestBasics:
    def test_mine_matches_direct_miner(self, service, flights, deadline):
        direct = mine(flights, k=2, variant="optimized", sample_size=8,
                      seed=1)
        served = service.mine(
            "flights", timeout=deadline.remaining(), k=2,
            variant="optimized", sample_size=8, seed=1,
        )
        assert service_results_match([direct], [served])

    def test_query_matches_direct_engine(self, service, flights, deadline):
        sql = ("SELECT Destination, COUNT(*) AS c FROM flights "
               "GROUP BY Destination ORDER BY c DESC")
        from repro.sql import SqlEngine

        engine = SqlEngine()
        engine.register_table("flights", flights)
        assert service.query(
            sql, timeout=deadline.remaining()
        ).rows == engine.query(sql).rows

    def test_sql_architecture_miner(self, service, flights, deadline):
        from repro.platforms.sql_sirum import SqlSirum

        direct = SqlSirum(k=2).mine(flights)
        served = service.mine(
            "flights", timeout=deadline.remaining(), k=2, engine="sql",
        )
        assert [tuple(m.rule.values) for m in served.rule_set] == [
            tuple(m.rule.values) for m in direct.rule_set
        ]

    def test_platform_metered_mining(self, service, deadline):
        # Platform sims change metered cost, never the mined rules.
        spark = service.mine(
            "flights", timeout=deadline.remaining(), k=2,
            variant="baseline", sample_size=8,
        )
        postgres = service.mine(
            "flights", timeout=deadline.remaining(), k=2,
            variant="baseline", sample_size=8, platform="postgres",
        )
        assert [tuple(m.rule.values) for m in postgres.rule_set] == [
            tuple(m.rule.values) for m in spark.rule_set
        ]
        # Distinct fingerprints: the platform run was not a cache hit.
        assert postgres.metrics["simulated_seconds"] != \
            spark.metrics["simulated_seconds"]

    def test_unknown_dataset_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown dataset"):
            service.submit_mine("nope")

    def test_unknown_engine_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown mining engine"):
            service.submit_mine("flights", engine="quantum")


class TestConcurrentEqualsSerial:
    def test_eight_clients_bit_identical_to_serial(self, flights, deadline):
        requests = build_service_workload(
            "flights", list(flights.schema.dimensions),
            flights.schema.measure, num_requests=24, k=2, sample_size=8,
            seed=0,
        )
        serial = run_serial_reference(flights, "flights", requests)
        with RuleMiningService(ServiceConfig(num_workers=4)) as svc:
            svc.register_dataset("flights", flights)
            concurrent = run_service_workload(
                svc, "flights", requests, num_clients=8,
                timeout=deadline.remaining(),
            )
            stats = svc.stats()
        assert service_results_match(serial["results"],
                                     concurrent["results"])
        # The repeated script must not re-execute every request.
        assert stats["jobs"]["completed"] < len(requests)
        assert stats["cache"]["hits"] + stats["coalesce_hits"] > 0


class TestCoalescing:
    def test_duplicate_inflight_requests_share_one_execution(
            self, service, deadline):
        release = block_all_workers(service, deadline)
        try:
            first = service.submit_mine("flights", k=2, sample_size=8)
            second = service.submit_mine("flights", k=2, sample_size=8)
            third = service.submit_query("SELECT COUNT(*) FROM flights")
            fourth = service.submit_query(
                "select   count( * )\nfrom flights"  # canonicalizes equal
            )
            assert not first.coalesced
            assert second.coalesced
            assert not third.coalesced
            assert fourth.coalesced
        finally:
            release.set()
        assert service_results_match(
            [first.result(deadline.remaining())],
            [second.result(deadline.remaining())],
        )
        assert third.result(deadline.remaining()).rows == fourth.result(
            deadline.remaining()
        ).rows
        stats = service.stats()
        assert stats["coalesce_hits"] == 2
        # One mining + one SQL execution for four submissions.
        assert stats["jobs"]["completed"] == 2

    def test_completed_requests_hit_the_cache_not_coalescing(
            self, service, deadline):
        first = service.submit_mine("flights", k=2, sample_size=8)
        first.result(deadline.remaining())
        second = service.submit_mine("flights", k=2, sample_size=8)
        assert second.cache_hit
        assert second.metrics().cache_hit
        assert second.result(deadline.remaining()) is first.result(
            deadline.remaining()
        )

    def test_different_configs_do_not_coalesce(self, service, deadline):
        release = block_all_workers(service, deadline)
        try:
            a = service.submit_mine("flights", k=2, sample_size=8)
            b = service.submit_mine("flights", k=3, sample_size=8)
            assert not b.coalesced
        finally:
            release.set()
        a.result(deadline.remaining())
        b.result(deadline.remaining())


class TestVersionInvalidation:
    def test_reregistration_invalidates_cached_results(
            self, flights, deadline):
        from repro.data.generators import SyntheticSpec, generate

        other, _ = generate(SyntheticSpec(
            num_rows=120, cardinalities=[3, 4], measure_kind="numeric",
        ), seed=5)
        with RuleMiningService(ServiceConfig(num_workers=2)) as svc:
            svc.register_dataset("d", flights)
            before = svc.mine("d", timeout=deadline.remaining(), k=2,
                              sample_size=8)
            svc.register_dataset("d", other)
            after = svc.mine("d", timeout=deadline.remaining(), k=2,
                             sample_size=8)
            stats = svc.stats()
        # The second mine must re-execute against the new table, not
        # serve the old version's cached result.
        assert not service_results_match([before], [after])
        assert stats["jobs"]["completed"] == 2
        assert stats["cache"]["hits"] == 0

    def test_sql_results_invalidate_on_any_registration(
            self, flights, deadline):
        with RuleMiningService(ServiceConfig(num_workers=2)) as svc:
            svc.register_dataset("flights", flights)
            sql = "SELECT COUNT(*) AS c FROM flights"
            svc.query(sql, timeout=deadline.remaining())
            svc.register_dataset("flights", flights.slice(0, 10))
            count = svc.query(sql, timeout=deadline.remaining()).scalar()
            assert count == 10

    def test_inflight_result_from_old_version_is_not_cached(
            self, flights, deadline):
        with RuleMiningService(ServiceConfig(num_workers=1)) as svc:
            svc.register_dataset("d", flights)
            release = block_all_workers(svc, deadline)
            try:
                stale = svc.submit_mine("d", k=2, sample_size=8)
                svc.register_dataset("d", flights.slice(0, 12))
            finally:
                release.set()
            stale.result(deadline.remaining())  # computed from old table
            fresh = svc.submit_mine("d", k=2, sample_size=8)
            assert not fresh.cache_hit  # the stale result was not filed
            fresh.result(deadline.remaining())


class TestOverloadAndLifecycle:
    def test_queue_overflow_raises_typed_error(self, flights, deadline):
        svc = RuleMiningService(ServiceConfig(
            num_workers=1, max_queue_depth=1,
        ))
        try:
            svc.register_dataset("flights", flights)
            release = block_all_workers(svc, deadline)
            try:
                svc.submit_mine("flights", k=2, sample_size=8)
                with pytest.raises(QueueFullError):
                    svc.submit_mine("flights", k=3, sample_size=8)
                assert svc.stats()["queue"]["rejections"] == 1
            finally:
                release.set()
        finally:
            svc.close()

    def test_queued_job_past_deadline_fails_typed(self, flights, deadline):
        import time

        svc = RuleMiningService(ServiceConfig(num_workers=1))
        try:
            svc.register_dataset("flights", flights)
            release = block_all_workers(svc, deadline)
            try:
                doomed = svc.submit_mine(
                    "flights", k=2, sample_size=8, deadline_seconds=0.01,
                )
                time.sleep(0.05)
            finally:
                release.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(deadline.remaining())
            assert svc.stats()["jobs"]["failed"] == 1
        finally:
            svc.close()

    def test_closed_service_rejects_submissions(self, flights):
        svc = RuleMiningService(ServiceConfig(num_workers=1))
        svc.register_dataset("flights", flights)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit_mine("flights")

    def test_failed_jobs_are_not_cached(self, service, deadline):
        bad = "SELECT nope FROM flights"
        from repro.sql.errors import SqlAnalysisError

        with pytest.raises(SqlAnalysisError):
            service.query(bad, timeout=deadline.remaining())
        with pytest.raises(SqlAnalysisError):
            service.query(bad, timeout=deadline.remaining())
        stats = service.stats()
        assert stats["jobs"]["failed"] == 2
        assert stats["cache"]["hits"] == 0


class TestFingerprints:
    def test_sql_fingerprint_canonicalizes_spelling(self):
        assert sql_fingerprint(
            "select a,  b from t where x=1"
        ) == sql_fingerprint("SELECT a, b FROM t WHERE x = 1")

    def test_sql_fingerprint_distinguishes_semantics(self):
        assert sql_fingerprint("SELECT a FROM t") != sql_fingerprint(
            "SELECT b FROM t"
        )

    def test_mining_fingerprint_resolves_variant_presets(self):
        assert mining_fingerprint(
            variant="rct", k=3
        ) == mining_fingerprint(variant="baseline", use_rct=True, k=3)

    def test_mining_fingerprint_distinguishes_k(self):
        assert mining_fingerprint(k=3) != mining_fingerprint(k=4)


class TestStats:
    def test_stats_shape(self, service, deadline):
        service.mine("flights", timeout=deadline.remaining(), k=2,
                     sample_size=8)
        stats = service.stats()
        assert stats["jobs"]["submitted"] == 1
        assert stats["jobs"]["completed"] == 1
        assert stats["queue"]["workers"] == 4
        assert stats["phase_seconds"]["execute"] > 0.0
        assert "queue_wait" in stats["phase_seconds"]
        assert stats["datasets"] == {"flights": 1}
        assert stats["cache"]["max_size"] == 256
        # No registered dataset is file-backed, so no pool to report —
        # but the process-local attachment-cache counters always are.
        assert stats["buffer_pool"]["attached"] is False
        attachments = stats["buffer_pool"]["attachments"]
        for field in ("segment_hits", "segment_misses",
                      "handle_hits", "handle_misses"):
            assert attachments[field] >= 0
        placement = stats["placement"]
        assert placement["shards"] >= 1
        assert placement["rebalances"] == 0
        assert 0.0 <= placement["affinity_hit_rate"] <= 1.0
        assert (placement["placed_jobs"] + placement["unplaced_jobs"]) == 1


class TestRemoteExecution:
    """engine_executor='remote': jobs run on shard workers."""

    def test_remote_jobs_match_serial_and_fold_placement(self, flights):
        from repro.net.worker import ShardWorker

        reference = mine(flights, k=3, sample_size=16, seed=0,
                         variant="optimized", parallelism=1)
        with ShardWorker() as worker:
            svc = RuleMiningService(ServiceConfig(
                num_workers=2, engine_executor="remote",
                shard_workers=[worker.address],
            ))
            try:
                svc.register_dataset("flights", flights)
                result = svc.mine("flights", k=3, sample_size=16,
                                  seed=0, variant="optimized")
                stats = svc.stats()
                worker_stages = worker.stats()["stages"]
            finally:
                svc.close()
        assert [tuple(m.rule.values) for m in reference.rule_set] == [
            tuple(m.rule.values) for m in result.rule_set
        ]
        assert reference.kl_trace == result.kl_trace
        assert worker_stages > 0
        placement = stats["placement"]
        assert placement["placed_stages"] > 0
        assert placement["worker_failures"] == 0

    def test_worker_death_is_visible_in_service_stats(self, flights):
        from repro.net.worker import ShardWorker

        reference = mine(flights, k=3, sample_size=16, seed=0,
                         variant="optimized", parallelism=1)
        w1 = ShardWorker().start()
        w2 = ShardWorker().start()
        try:
            svc = RuleMiningService(ServiceConfig(
                num_workers=2, engine_executor="remote",
                shard_workers=[w1.address, w2.address],
            ))
            try:
                svc.register_dataset("flights", flights)
                # Warm both workers, then kill one: the next job must
                # recover via re-placement with unchanged results.
                first = svc.mine("flights", k=3, sample_size=16,
                                 seed=0, variant="optimized")
                w2.stop()
                second = svc.mine("flights", k=3, sample_size=16,
                                  seed=1, variant="optimized")
                stats = svc.stats()
            finally:
                svc.close()
        finally:
            w1.stop()
            w2.stop()
        assert [tuple(m.rule.values) for m in reference.rule_set] == [
            tuple(m.rule.values) for m in first.rule_set
        ]
        ref2 = mine(flights, k=3, sample_size=16, seed=1,
                    variant="optimized", parallelism=1)
        assert [tuple(m.rule.values) for m in ref2.rule_set] == [
            tuple(m.rule.values) for m in second.rule_set
        ]
        placement = stats["placement"]
        assert placement["worker_failures"] >= 1
        assert placement["rebalances"] >= 1

    def test_remote_executor_requires_shard_workers(self):
        with pytest.raises(ServiceError, match="shard_workers"):
            ServiceConfig(engine_executor="remote")
