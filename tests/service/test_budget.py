"""Tests for engine-worker budget admission (:mod:`repro.service.budget`).

Two layers: unit tests of :class:`EngineBudget`'s allocation mechanics
(clamping, degrade floor, FIFO blocking, re-expansion, timeout,
idempotent release), then service-level tests that the budget actually
governs concurrent mining jobs — the aggregate number of *live* engine
workers never exceeds ``max_engine_workers`` (counted by an
instrumented cluster), abort paths release their slots, and results
stay bit-identical when the budget forces serial execution.
"""

import threading

import pytest

from repro.common.errors import BudgetExhaustedError, ServiceError
from repro.core.miner import mine
from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel
from repro.service import EngineBudget, RuleMiningService, ServiceConfig
from repro.service.budget import default_max_engine_workers


class TestEngineBudgetUnit:
    def test_grant_clamps_to_free_slots(self):
        budget = EngineBudget(max_engine_workers=4)
        first = budget.acquire(3)
        assert (first.requested, first.granted) == (3, 3)
        assert not first.degraded
        second = budget.acquire(4)
        # One slot left: degrade to serial instead of blocking.
        assert (second.requested, second.granted) == (4, 1)
        assert second.degraded
        assert budget.in_use == 4 and budget.available == 0
        first.release()
        second.release()
        assert budget.in_use == 0

    def test_grants_carry_disjoint_placement_slots(self):
        budget = EngineBudget(max_engine_workers=6)
        first = budget.acquire(3)
        second = budget.acquire(2)
        # One slot id per granted worker, machine-wide unique.
        assert len(first.slots) == first.granted
        assert len(second.slots) == second.granted
        assert not set(first.slots) & set(second.slots)
        assert set(first.slots) | set(second.slots) <= set(range(6))
        first.release()
        second.release()

    def test_released_slots_come_back_lowest_first(self):
        budget = EngineBudget(max_engine_workers=4)
        first = budget.acquire(2)
        assert first.slots == (0, 1)
        second = budget.acquire(2)
        assert second.slots == (2, 3)
        first.release()
        # A re-acquiring job gets the lowest free ids back — the same
        # slots it likely held before, keeping worker caches warm.
        third = budget.acquire(2)
        assert third.slots == (0, 1)
        second.release()
        third.release()

    def test_release_returns_slots_exactly_once(self):
        budget = EngineBudget(max_engine_workers=2)
        grant = budget.acquire(2)
        grant.release()
        grant.release()  # idempotent: no double-free of slot ids
        follow_up = budget.acquire(2)
        assert follow_up.slots == (0, 1)
        follow_up.release()

    def test_request_capped_by_capacity(self):
        budget = EngineBudget(max_engine_workers=2)
        grant = budget.acquire(8)
        # The request is recorded as asked; the grant cannot exceed
        # what exists, and the mismatch reads as degradation.
        assert (grant.requested, grant.granted) == (8, 2)
        assert grant.degraded

    def test_exhausted_budget_blocks_then_reexpands(self, deadline):
        budget = EngineBudget(max_engine_workers=4)
        holder = budget.acquire(4)
        got = []
        waiter = threading.Thread(
            target=lambda: got.append(budget.acquire(4)), daemon=True
        )
        waiter.start()
        while budget.waiting == 0:
            deadline.remaining()
        assert not got  # blocked: zero slots free
        holder.release()
        waiter.join(deadline.remaining())
        # The queued request re-expanded to its full degree against
        # the replenished pool, not the 0 slots it saw while waiting.
        assert got and got[0].granted == 4
        got[0].release()
        assert budget.in_use == 0

    def test_min_parallelism_is_the_degrade_floor(self, deadline):
        budget = EngineBudget(max_engine_workers=4, min_parallelism=2)
        holder = budget.acquire(3)
        assert holder.granted == 3
        # One free slot is below the floor of 2: the request must
        # block rather than accept a sub-floor degree.
        got = []
        waiter = threading.Thread(
            target=lambda: got.append(budget.acquire(4)), daemon=True
        )
        waiter.start()
        while budget.waiting == 0:
            deadline.remaining()
        assert not got
        holder.release()
        waiter.join(deadline.remaining())
        assert got and got[0].granted == 4
        got[0].release()
        # A request below the floor keeps its own (smaller) floor.
        small = budget.acquire(1)
        assert small.granted == 1
        small.release()

    def test_timeout_raises_and_holds_nothing(self):
        budget = EngineBudget(max_engine_workers=1)
        holder = budget.acquire(1)
        with pytest.raises(BudgetExhaustedError):
            budget.acquire(1, timeout=0.02)
        assert budget.waiting == 0
        assert budget.stats()["timeouts"] == 1
        holder.release()
        # The pool is intact: the next request is granted immediately.
        assert budget.acquire(1, timeout=0.02).granted == 1

    def test_release_is_idempotent(self):
        budget = EngineBudget(max_engine_workers=2)
        grant = budget.acquire(2)
        assert grant.release() is True
        assert grant.release() is False
        assert budget.in_use == 0
        assert budget.stats()["releases"] == 1

    def test_grant_context_manager_releases(self):
        budget = EngineBudget(max_engine_workers=2)
        with budget.acquire(2) as grant:
            assert budget.in_use == 2
        assert grant.released and budget.in_use == 0

    def test_validation(self):
        with pytest.raises(ServiceError):
            EngineBudget(max_engine_workers=0)
        with pytest.raises(ServiceError):
            EngineBudget(max_engine_workers=4, min_parallelism=0)
        with pytest.raises(ServiceError):
            EngineBudget(max_engine_workers=2, min_parallelism=3)
        with pytest.raises(ServiceError):
            EngineBudget(max_engine_workers=4).acquire(0)

    def test_default_capacity_is_host_width(self):
        assert EngineBudget().max_engine_workers == (
            default_max_engine_workers()
        )

    def test_stats_counters(self):
        budget = EngineBudget(max_engine_workers=4)
        a = budget.acquire(3)
        b = budget.acquire(2)
        stats = budget.stats()
        assert stats["grants"] == 2
        assert stats["degraded_grants"] == 1
        assert stats["peak_in_use"] == 4
        a.release()
        b.release()
        assert budget.stats()["releases"] == 2


class _WorkerGauge:
    """Counts engine kernels running concurrently, across all jobs."""

    def __init__(self):
        self._lock = threading.Lock()
        self.live = 0
        self.peak = 0

    def enter(self):
        with self._lock:
            self.live += 1
            self.peak = max(self.peak, self.live)

    def exit(self):
        with self._lock:
            self.live -= 1


class _InstrumentedCluster(ClusterContext):
    """A cluster whose kernels report into a shared live-worker gauge."""

    def __init__(self, gauge, **kwargs):
        super().__init__(**kwargs)
        self._gauge = gauge

    def run_stage(self, kernel, partitions, name="stage",
                  shuffle_output=False):
        gauge = self._gauge

        def counting(tc, part):
            gauge.enter()
            try:
                return kernel(tc, part)
            finally:
                gauge.exit()

        return super().run_stage(
            counting, partitions, name=name, shuffle_output=shuffle_output
        )


def _instrumented_factory(gauge, parallelism):
    spec = ClusterSpec(num_executors=2, cores_per_executor=2,
                       executor_memory_bytes=32 * 1024**2, seed=7)

    def factory(budget_grant=None):
        return _InstrumentedCluster(
            gauge, spec=spec, cost_model=CostModel(),
            parallelism=None if budget_grant is not None else parallelism,
            executor="thread", budget_grant=budget_grant,
        )

    return factory


MAX_WORKERS = 4
CONCURRENT_JOBS = 8


class TestServiceBudgetAdmission:
    def test_aggregate_live_workers_never_exceed_budget(self, flights):
        gauge = _WorkerGauge()
        service = RuleMiningService(
            ServiceConfig(
                num_workers=CONCURRENT_JOBS,
                engine_parallelism=4,
                max_engine_workers=MAX_WORKERS,
            ),
            make_cluster=_instrumented_factory(gauge, parallelism=4),
        )
        try:
            service.register_dataset("flights", flights)
            handles = [
                service.submit_mine("flights", k=3, sample_size=16, seed=s)
                for s in range(CONCURRENT_JOBS)  # distinct: no coalescing
            ]
            results = [h.result(60.0) for h in handles]
        finally:
            service.close()
        assert len(results) == CONCURRENT_JOBS
        # The instrumented gauge saw every kernel in every job: the
        # aggregate live degree stayed within the machine-wide budget.
        assert 0 < gauge.peak <= MAX_WORKERS
        stats = service.budget_stats()
        assert stats["peak_in_use"] <= MAX_WORKERS
        assert stats["grants"] == CONCURRENT_JOBS
        assert stats["in_use"] == 0 and stats["waiting"] == 0
        assert stats["releases"] == CONCURRENT_JOBS

    def test_oversubscribe_policy_bypasses_budget(self, flights):
        gauge = _WorkerGauge()
        service = RuleMiningService(
            ServiceConfig(
                num_workers=2, engine_parallelism=2,
                admission="oversubscribe",
            ),
            make_cluster=_instrumented_factory(gauge, parallelism=2),
        )
        try:
            service.register_dataset("flights", flights)
            result = service.mine("flights", k=2, sample_size=16, seed=0,
                                  timeout=60.0)
        finally:
            service.close()
        assert len(result.rule_set) > 0
        assert service.budget_stats() == {"admission": "oversubscribe"}

    def test_job_metrics_record_granted_vs_requested(self, flights):
        with RuleMiningService(ServiceConfig(
            num_workers=1, engine_parallelism=4, max_engine_workers=1,
        )) as service:
            service.register_dataset("flights", flights)
            handle = service.submit_mine("flights", k=2, sample_size=16,
                                         seed=0)
            handle.result(60.0)
            metrics = handle.metrics()
            assert metrics.requested_parallelism == 4
            assert metrics.granted_parallelism == 1
            assert metrics.budget_wait_seconds >= 0.0
            snapshot = metrics.snapshot()
            assert snapshot["granted_parallelism"] == 1
            stats = service.stats()
            assert stats["budget"]["degraded_grants"] == 1
            assert "budget_wait" in stats["phase_seconds"]

    def test_sql_jobs_bypass_budget(self, flights):
        with RuleMiningService(ServiceConfig(
            num_workers=2, max_engine_workers=1,
        )) as service:
            service.register_dataset("flights", flights)
            handle = service.submit_query(
                "SELECT COUNT(*) AS n FROM flights"
            )
            assert handle.result(30.0).scalar() == len(flights)
            metrics = handle.metrics()
            assert metrics.granted_parallelism is None
            assert service.budget_stats()["grants"] == 0

    def test_failed_job_releases_slots(self, flights):
        exploded = []

        class ExplodingCluster(ClusterContext):
            def run_stage(self, kernel, partitions, **kwargs):
                if not exploded:
                    exploded.append(True)
                    raise RuntimeError("stage blew up")
                return super().run_stage(kernel, partitions, **kwargs)

        def factory(budget_grant=None):
            return ExplodingCluster(budget_grant=budget_grant)

        with RuleMiningService(ServiceConfig(
            num_workers=2, engine_parallelism=2, max_engine_workers=2,
        ), make_cluster=factory) as service:
            service.register_dataset("flights", flights)
            handle = service.submit_mine("flights", k=2, sample_size=16,
                                         seed=0)
            with pytest.raises(RuntimeError):
                handle.result(30.0)
            stats = service.budget_stats()
            assert stats["grants"] == 1
            assert stats["releases"] == 1
            assert stats["in_use"] == 0
            # The budget is intact: the next job runs normally.
            result = service.mine("flights", k=2, sample_size=16, seed=1,
                                  timeout=60.0)
            assert len(result.rule_set) > 0

    def test_aborted_stage_releases_slots(self):
        budget = EngineBudget(max_engine_workers=4)
        grant = budget.acquire(2)
        cluster = ClusterContext(budget_grant=grant)

        def failing_kernel(tc, part):
            raise RuntimeError("kernel abort")

        try:
            with pytest.raises(RuntimeError):
                cluster.run_stage(failing_kernel, range(4))
        finally:
            cluster.close()
        assert budget.in_use == 0
        assert budget.stats()["releases"] == 1

    def test_budget_forced_serial_is_bit_identical(self, flights):
        from repro.bench import mining_results_identical

        kwargs = dict(k=3, variant="optimized", sample_size=16, seed=0)
        reference = mine(flights, parallelism=1, **kwargs)
        with RuleMiningService(ServiceConfig(
            num_workers=2, engine_parallelism=4, max_engine_workers=1,
        )) as service:
            service.register_dataset("flights", flights)
            degraded = service.mine("flights", timeout=60.0, **kwargs)
        # Rules, lambdas, estimates, KL trace and every simulated
        # metric: the budget-degraded run is indistinguishable from
        # serial in everything but wall-clock.
        assert mining_results_identical(reference, degraded)

    def test_custom_factory_must_accept_grant_under_budget(self):
        with pytest.raises(ServiceError):
            RuleMiningService(
                ServiceConfig(num_workers=1),
                make_cluster=lambda: ClusterContext(),
            )
        # The same factory is fine when the budget is off.
        service = RuleMiningService(
            ServiceConfig(num_workers=1, admission="oversubscribe"),
            make_cluster=lambda: ClusterContext(),
        )
        service.close()

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            ServiceConfig(admission="besteffort")
        with pytest.raises(ServiceError):
            ServiceConfig(max_engine_workers=0)
        with pytest.raises(ServiceError):
            ServiceConfig(min_engine_parallelism=0)
        with pytest.raises(ServiceError):
            ServiceConfig(budget_wait_seconds=0)

    def test_budget_wait_timeout_surfaces_to_caller(self, deadline):
        budget_holder = threading.Event()
        release_holder = threading.Event()

        def blocking_factory(budget_grant=None):
            # First job: hold the only slot until the test says go.
            budget_holder.set()
            release_holder.wait(30.0)
            return ClusterContext(budget_grant=budget_grant)

        with RuleMiningService(ServiceConfig(
            num_workers=2, max_engine_workers=1,
            budget_wait_seconds=0.05,
        ), make_cluster=blocking_factory) as service:
            from repro.data.generators import flight_table

            service.register_dataset("flights", flight_table())
            first = service.submit_mine("flights", k=2, sample_size=16,
                                        seed=0)
            assert budget_holder.wait(deadline.remaining())
            second = service.submit_mine("flights", k=2, sample_size=16,
                                         seed=1)
            with pytest.raises(BudgetExhaustedError):
                second.result(deadline.remaining())
            release_holder.set()
            first.result(deadline.remaining())
        assert service.budget_stats()["in_use"] == 0


class TestRemoteSpill:
    """Budget grants spanning hosts: spill onto shard workers."""

    def test_local_capacity_is_preferred(self):
        budget = EngineBudget(max_engine_workers=2,
                              remote_workers=["h1:1", "h2:2"])
        grant = budget.acquire(2)
        assert not grant.spilled
        assert grant.remote_addresses == ()
        assert budget.stats()["remote_in_use"] == 0
        grant.release()

    def test_exhausted_local_pool_spills_to_remote(self):
        budget = EngineBudget(max_engine_workers=2,
                              remote_workers=["h1:1", "h2:2", "h3:3"])
        local = budget.acquire(2)
        spilled = budget.acquire(2)
        assert spilled.spilled
        assert spilled.granted == 2
        assert spilled.remote_addresses == ("h1:1", "h2:2")
        stats = budget.stats()
        assert stats["remote_workers"] == 3
        assert stats["remote_in_use"] == 2
        assert stats["remote_available"] == 1
        assert stats["spilled_grants"] == 1
        # Slot ids continue above the local space and return on release.
        assert all(s >= budget.max_engine_workers for s in spilled.slots)
        spilled.release()
        assert budget.stats()["remote_in_use"] == 0
        local.release()

    def test_spilled_grant_clamps_to_free_remote_workers(self):
        budget = EngineBudget(max_engine_workers=1,
                              remote_workers=["h1:1"])
        local = budget.acquire(1)
        spilled = budget.acquire(4)
        assert spilled.spilled
        assert spilled.granted == 1
        assert spilled.degraded
        local.release()
        spilled.release()

    def test_no_remote_workers_means_blocking_as_before(self):
        budget = EngineBudget(max_engine_workers=1)
        hold = budget.acquire(1)
        with pytest.raises(BudgetExhaustedError):
            budget.acquire(1, timeout=0.05)
        hold.release()

    def test_spilled_job_runs_remote_and_matches_local(self, flights):
        # With the whole local pool held, a submitted job *must* spill
        # onto the shard worker — and produce bit-identical results.
        from repro.net.worker import ShardWorker

        reference = mine(flights, k=3, sample_size=16, seed=0,
                         variant="optimized", parallelism=1)
        with ShardWorker() as worker:
            config = ServiceConfig(
                num_workers=2, engine_parallelism=1,
                max_engine_workers=1,
                shard_workers=[worker.address],
            )
            service = RuleMiningService(config)
            try:
                service.register_dataset("flights", flights)
                hold = service._budget.acquire(1)
                try:
                    result = service.mine(
                        "flights", k=3, sample_size=16, seed=0,
                        variant="optimized",
                    )
                finally:
                    hold.release()
                stats = service.stats()
                worker_stages = worker.stats()["stages"]
            finally:
                service.close()
        assert [tuple(m.rule.values) for m in reference.rule_set] == [
            tuple(m.rule.values) for m in result.rule_set
        ]
        assert reference.kl_trace == result.kl_trace
        budget = stats["budget"]
        assert budget["remote_workers"] == 1
        assert budget["spilled_grants"] == 1
        assert worker_stages > 0
