"""Shared fixtures for the service tests.

Concurrency tests can hang rather than fail, which stalls the whole
suite; the :class:`Deadline` helper is an in-test timeout guard (the
container has no ``pytest-timeout``).  Every blocking wait in these
tests draws from one per-test budget via ``deadline.remaining()`` —
once the budget is spent the next wait fails the test immediately
instead of blocking forever.
"""

import time

import pytest

from repro.data.generators import flight_table


class Deadline:
    """A per-test time budget for blocking waits."""

    def __init__(self, seconds):
        self.seconds = seconds
        self._expires = time.monotonic() + seconds

    def remaining(self):
        """Seconds left; fails the test if the budget is exhausted."""
        remaining = self._expires - time.monotonic()
        if remaining <= 0:
            pytest.fail(
                "test exceeded its %.1fs concurrency deadline" % self.seconds
            )
        return remaining

    def expired(self):
        return time.monotonic() >= self._expires


@pytest.fixture
def deadline():
    return Deadline(30.0)


@pytest.fixture(scope="module")
def flights():
    return flight_table()
