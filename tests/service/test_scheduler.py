"""Tests for the job scheduler: priorities, bounds, deadlines, drain."""

import threading

import pytest

from repro.common.errors import (
    DeadlineExceededError,
    QueueFullError,
    ReproError,
    ServiceClosedError,
    ServiceError,
)
from repro.service import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    Job,
    JobHandle,
    JobScheduler,
)


class Blocker:
    """Occupies a worker until released, deterministically."""

    def __init__(self):
        self.release = threading.Event()
        self.running = threading.Event()

    def __call__(self):
        self.running.set()
        self.release.wait(30.0)
        return "unblocked"


def submit(scheduler, fn, **kwargs):
    job = Job(fn, **kwargs)
    scheduler.submit(job)
    return JobHandle(job)


class TestExecution:
    def test_runs_a_job_and_returns_its_result(self, deadline):
        with JobScheduler(num_workers=2) as scheduler:
            handle = submit(scheduler, lambda: 21 * 2)
            assert handle.result(deadline.remaining()) == 42

    def test_exceptions_reraise_in_caller(self, deadline):
        def boom():
            raise ValueError("exploded")

        with JobScheduler(num_workers=1) as scheduler:
            handle = submit(scheduler, boom)
            with pytest.raises(ValueError, match="exploded"):
                handle.result(deadline.remaining())

    def test_priority_orders_queued_jobs(self, deadline):
        blocker = Blocker()
        order = []
        with JobScheduler(num_workers=1, max_queue_depth=8) as scheduler:
            submit(scheduler, blocker)
            assert blocker.running.wait(deadline.remaining())
            low = submit(
                scheduler, lambda: order.append("low"),
                priority=PRIORITY_LOW,
            )
            normal = submit(
                scheduler, lambda: order.append("normal"),
                priority=PRIORITY_NORMAL,
            )
            high = submit(
                scheduler, lambda: order.append("high"),
                priority=PRIORITY_HIGH,
            )
            blocker.release.set()
            for handle in (low, normal, high):
                handle.result(deadline.remaining())
        assert order == ["high", "normal", "low"]


class TestBoundedAdmission:
    def test_queue_overflow_raises_typed_error(self, deadline):
        blocker = Blocker()
        scheduler = JobScheduler(num_workers=1, max_queue_depth=2)
        try:
            submit(scheduler, blocker)
            assert blocker.running.wait(deadline.remaining())
            submit(scheduler, lambda: None)
            submit(scheduler, lambda: None)
            with pytest.raises(QueueFullError) as excinfo:
                submit(scheduler, lambda: None)
            # Typed: catchable as the service family or the library base.
            assert isinstance(excinfo.value, ServiceError)
            assert isinstance(excinfo.value, ReproError)
        finally:
            blocker.release.set()
            scheduler.close()

    def test_queue_depth_reports_waiting_jobs(self, deadline):
        blocker = Blocker()
        scheduler = JobScheduler(num_workers=1, max_queue_depth=8)
        try:
            submit(scheduler, blocker)
            assert blocker.running.wait(deadline.remaining())
            assert scheduler.queue_depth == 0
            submit(scheduler, lambda: None)
            assert scheduler.queue_depth == 1
        finally:
            blocker.release.set()
            scheduler.close()


class TestDeadlines:
    def test_job_past_deadline_fails_instead_of_running(self, deadline):
        blocker = Blocker()
        ran = []
        scheduler = JobScheduler(num_workers=1, max_queue_depth=8)
        try:
            submit(scheduler, blocker)
            assert blocker.running.wait(deadline.remaining())
            doomed = submit(
                scheduler, lambda: ran.append(True),
                deadline_seconds=0.01,
            )
            import time
            time.sleep(0.05)  # let the start deadline lapse while queued
            blocker.release.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(deadline.remaining())
            assert ran == []
        finally:
            blocker.release.set()
            scheduler.close()

    def test_started_jobs_are_not_interrupted(self, deadline):
        # Deadlines gate the *start*; a running job always completes.
        with JobScheduler(num_workers=1) as scheduler:
            handle = submit(scheduler, lambda: "done", deadline_seconds=60.0)
            assert handle.result(deadline.remaining()) == "done"


class TestShutdown:
    def test_close_drains_queued_jobs(self, deadline):
        results = []
        scheduler = JobScheduler(num_workers=2, max_queue_depth=16)
        handles = [
            submit(scheduler, lambda i=i: results.append(i))
            for i in range(8)
        ]
        scheduler.close(wait=True)
        for handle in handles:
            handle.result(deadline.remaining())
        assert sorted(results) == list(range(8))

    def test_submit_after_close_raises_typed_error(self):
        scheduler = JobScheduler(num_workers=1)
        scheduler.close()
        with pytest.raises(ServiceClosedError):
            submit(scheduler, lambda: None)

    def test_close_is_idempotent(self):
        scheduler = JobScheduler(num_workers=1)
        scheduler.close()
        scheduler.close()


class TestJobMetrics:
    def test_handle_metrics_report_wait_and_run(self, deadline):
        with JobScheduler(num_workers=1) as scheduler:
            handle = submit(scheduler, lambda: None)
            handle.result(deadline.remaining())
        metrics = handle.metrics()
        assert metrics.queue_wait_seconds >= 0.0
        assert metrics.run_seconds >= 0.0
        assert metrics.cache_hit is False
        assert metrics.coalesced is False
        snapshot = metrics.snapshot()
        assert snapshot["job_id"] == handle.job_id


class TestDeadlineEnforcement:
    def test_waiter_is_released_at_the_deadline_not_at_pop(self, deadline):
        """result() must not block until a worker frees up."""
        import time

        blocker = Blocker()
        scheduler = JobScheduler(num_workers=1, max_queue_depth=8)
        try:
            submit(scheduler, blocker)
            assert blocker.running.wait(deadline.remaining())
            doomed = submit(
                scheduler, lambda: None, deadline_seconds=0.05,
            )
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                # The worker stays blocked the whole time; only the
                # waiter-side deadline can release this call.
                doomed.result(deadline.remaining())
            assert time.monotonic() - started < 5.0
        finally:
            blocker.release.set()
            scheduler.close()

    def test_expired_queued_jobs_do_not_cause_queue_full(self, deadline):
        import time

        blocker = Blocker()
        scheduler = JobScheduler(num_workers=1, max_queue_depth=2)
        try:
            submit(scheduler, blocker)
            assert blocker.running.wait(deadline.remaining())
            dead_a = submit(scheduler, lambda: None, deadline_seconds=0.01)
            dead_b = submit(scheduler, lambda: None, deadline_seconds=0.01)
            time.sleep(0.05)
            # Queue is nominally full, but both occupants are expired:
            # admission sweeps them instead of rejecting.
            alive = submit(scheduler, lambda: "ran")
            for handle in (dead_a, dead_b):
                with pytest.raises(DeadlineExceededError):
                    handle.result(deadline.remaining())
        finally:
            blocker.release.set()
        assert alive.result(deadline.remaining()) == "ran"
        scheduler.close()

    def test_completion_is_once_only(self):
        job = Job(lambda: None)
        assert job.fail(ValueError("first")) is True
        assert job.finish("late") is False
        assert isinstance(job.exception, ValueError)
        assert job.result is None
