"""Tests for the versioned TTL + LRU result cache."""

import threading

from repro.service import ResultCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLru:
    def test_get_put_roundtrip(self):
        cache = ResultCache(capacity=4)
        key = ("mine", "d", 1, ("fp",))
        assert cache.get(key) == (False, None)
        cache.put(key, "value")
        assert cache.get(key) == (True, "value")

    def test_capacity_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("a") == (True, 1)
        assert cache.get("b") == (False, None)
        assert cache.get("c") == (True, 3)
        assert cache.evictions == 1

    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") == (False, None)

    def test_overwrite_replaces_value(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == (True, 2)
        assert len(cache) == 1


class TestTtl:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == (True, 1)
        clock.advance(0.2)
        assert cache.get("a") == (False, None)
        assert cache.expirations == 1

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=None, clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == (True, 1)


class TestInvalidation:
    def test_invalidate_dataset_drops_matching_keys(self):
        cache = ResultCache(capacity=8)
        cache.put(("mine", "flights", 1, ("fp",)), "m1")
        cache.put(("mine", "flights", 2, ("fp",)), "m2")
        cache.put(("mine", "taxis", 1, ("fp",)), "m3")
        removed = cache.invalidate_dataset("flights")
        assert removed == 2
        assert cache.get(("mine", "taxis", 1, ("fp",)))[0] is True
        assert cache.get(("mine", "flights", 1, ("fp",)))[0] is False

    def test_versioned_keys_do_not_collide(self):
        cache = ResultCache(capacity=8)
        cache.put(("mine", "d", 1, ("fp",)), "old")
        cache.put(("mine", "d", 2, ("fp",)), "new")
        assert cache.get(("mine", "d", 1, ("fp",))) == (True, "old")
        assert cache.get(("mine", "d", 2, ("fp",))) == (True, "new")


class TestStats:
    def test_info_counts(self):
        cache = ResultCache(capacity=2, ttl_seconds=5.0)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        info = cache.info
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["size"] == 1
        assert info["max_size"] == 2
        assert info["ttl_seconds"] == 5.0


class TestThreadSafety:
    def test_concurrent_puts_and_gets_stay_consistent(self, deadline):
        cache = ResultCache(capacity=64)
        errors = []

        def hammer(worker):
            try:
                for i in range(300):
                    key = ("k", i % 40)
                    cache.put(key, (key, worker))
                    hit, value = cache.get(key)
                    if hit:
                        # Values must always be a (key, writer) pair for
                        # the same key — never torn or misfiled.
                        assert value[0] == key
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,), daemon=True)
            for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(deadline.remaining())
        assert not errors
        assert len(cache) <= 64


class TestStructuralInvalidation:
    def test_dataset_named_sql_does_not_wipe_sql_results(self):
        cache = ResultCache(capacity=8)
        cache.put(("sql", 3, "SELECT 1"), "query-result")
        cache.put(("mine", "sql", 2, ("fp",)), "mine-on-sql-dataset")
        removed = cache.invalidate_dataset("sql")
        assert removed == 1
        assert cache.get(("sql", 3, "SELECT 1")) == (True, "query-result")
        assert cache.get(("mine", "sql", 2, ("fp",)))[0] is False

    def test_dataset_named_mine_only_matches_dataset_position(self):
        cache = ResultCache(capacity=8)
        cache.put(("mine", "flights", 1, ("fp",)), "keep")
        cache.put(("mine", "mine", 1, ("fp",)), "drop")
        assert cache.invalidate_dataset("mine") == 1
        assert cache.get(("mine", "flights", 1, ("fp",)))[0] is True

    def test_invalidate_where_predicate(self):
        cache = ResultCache(capacity=8)
        cache.put(("sql", 1, "q"), "old")
        cache.put(("sql", 2, "q"), "new")
        removed = cache.invalidate_where(
            lambda key: key[0] == "sql" and key[1] < 2
        )
        assert removed == 1
        assert cache.get(("sql", 2, "q"))[0] is True
