"""Data Auditor tableaux and Data X-Ray diagnosis baselines."""

import numpy as np
import pytest

from repro.baselines import diagnose, generate_tableau
from repro.common.errors import ConfigError, DataError
from repro.data.schema import Schema
from repro.data.table import Table


def dirty_table(n_dirty=20, n_clean=60, noise_dirty=0, seed=0):
    """All-dirty rows share (src='feed2', type='auto'); clean rows vary.

    ``noise_dirty`` adds dirty rows with random attributes — errors a
    pattern cannot explain.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n_dirty):
        rows.append(("feed2", "auto", rng.choice(["a", "b", "c"]), 1.0))
    for _ in range(n_clean):
        rows.append(
            (
                rng.choice(["feed1", "feed3"]),
                rng.choice(["auto", "manual"]),
                rng.choice(["a", "b", "c"]),
                0.0,
            )
        )
    for _ in range(noise_dirty):
        rows.append(
            (
                rng.choice(["feed1", "feed3"]),
                "manual",
                rng.choice(["a", "b", "c"]),
                1.0,
            )
        )
    schema = Schema(["source", "entry_type", "category"], "is_dirty")
    return Table.from_rows(schema, rows)


class TestPatternTableau:
    def test_finds_the_planted_pattern(self):
        table = dirty_table()
        tableau = generate_tableau(table, seed=1)
        assert len(tableau) >= 1
        decoded = [p.decode(table) for p in tableau]
        assert any(
            values[0] == "feed2" or values[1] == "auto" for values in decoded
        )

    def test_full_coverage_of_systematic_errors(self):
        tableau = generate_tableau(dirty_table(), coverage=1.0, seed=1)
        assert tableau.coverage == pytest.approx(1.0)

    def test_patterns_meet_confidence_threshold(self):
        table = dirty_table(noise_dirty=5)
        tableau = generate_tableau(table, min_confidence=0.9, seed=1)
        for pattern in tableau:
            assert pattern.confidence >= 0.9

    def test_patterns_meet_support_threshold(self):
        table = dirty_table()
        tableau = generate_tableau(table, min_support=5, seed=1)
        for pattern in tableau:
            assert pattern.support >= 5

    def test_clean_table_yields_empty_tableau(self):
        table = dirty_table(n_dirty=0, n_clean=30)
        tableau = generate_tableau(table)
        assert len(tableau) == 0
        assert tableau.coverage == 1.0

    def test_max_patterns_respected(self):
        table = dirty_table(noise_dirty=15, seed=3)
        tableau = generate_tableau(
            table, min_confidence=0.2, max_patterns=2, seed=3
        )
        assert len(tableau) <= 2

    def test_non_binary_measure_rejected(self):
        schema = Schema(["a"], "m")
        table = Table.from_rows(schema, [("x", 2.5)])
        with pytest.raises(DataError):
            generate_tableau(table)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_support": 0},
            {"min_confidence": 0.0},
            {"min_confidence": 1.5},
            {"coverage": 0.0},
        ],
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(ConfigError):
            generate_tableau(dirty_table(), **kwargs)

    def test_greedy_prefers_high_marginal_cover(self):
        # One broad pattern explains everything; narrow ones add nothing.
        table = dirty_table()
        tableau = generate_tableau(table, coverage=1.0, seed=1)
        assert tableau.patterns[0].dirty_covered == tableau.dirty_total


class TestDataXray:
    def test_explains_systematic_errors(self):
        table = dirty_table()
        result = diagnose(table, seed=1)
        assert len(result) >= 1
        assert result.false_negatives == 0

    def test_cost_accounts_for_features_and_errors(self):
        table = dirty_table()
        result = diagnose(table, alpha=2.0, seed=1)
        assert result.cost == pytest.approx(
            2.0 * len(result)
            + result.false_positives
            + result.false_negatives
        )

    def test_high_alpha_buys_fewer_features(self):
        table = dirty_table(noise_dirty=10, seed=5)
        cheap = diagnose(table, alpha=0.5, seed=5)
        expensive = diagnose(table, alpha=25.0, seed=5)
        assert len(expensive) <= len(cheap)

    def test_clean_table_needs_no_features(self):
        table = dirty_table(n_dirty=0, n_clean=30)
        result = diagnose(table)
        assert len(result) == 0
        assert result.cost == 0.0

    def test_unexplainable_noise_left_as_false_negatives(self):
        # With a huge alpha, claiming scattered noise is never worth a
        # feature; the diagnosis reports the residual honestly.
        table = dirty_table(n_dirty=0, n_clean=50, noise_dirty=3, seed=7)
        result = diagnose(table, alpha=50.0, seed=7)
        assert result.false_negatives > 0 or len(result) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            diagnose(dirty_table(), alpha=-1)
        with pytest.raises(ConfigError):
            diagnose(dirty_table(), max_features=0)

    def test_non_binary_measure_rejected(self):
        schema = Schema(["a"], "m")
        table = Table.from_rows(schema, [("x", 0.25)])
        with pytest.raises(DataError):
            diagnose(table)

    def test_diagnosis_cost_never_exceeds_do_nothing(self):
        # Selecting features only happens when it lowers cost; the
        # empty explanation costs exactly the number of dirty tuples.
        table = dirty_table(noise_dirty=8, seed=11)
        dirty_count = int(np.asarray(table.measure).sum())
        result = diagnose(table, alpha=3.0, seed=11)
        assert result.cost <= dirty_count


class TestAgainstSirum:
    def test_sirum_finds_what_the_baselines_find(self):
        """The informative-rule view should surface the same systematic
        error the tableau/diagnosis baselines identify (thesis §1)."""
        from repro.apps import diagnose_dirty_records

        table = dirty_table()
        _result, findings = diagnose_dirty_records(table, k=3)
        tableau = generate_tableau(table, seed=1)
        tableau_values = {
            tuple(p.decode(table)) for p in tableau
        }
        sirum_values = {tuple(f.decode(table)) for f in findings}
        # At least one explanation is shared verbatim.
        assert tableau_values & sirum_values or any(
            "feed2" in v or "auto" in v for values in sirum_values
            for v in values
        )
