"""Tests for the prior-work baselines ([16] and [29])."""

import numpy as np
import pytest

from repro.baselines import (
    ElGebalyMiner,
    SarawagiExplorer,
    binary_kl_divergence,
)
from repro.common.errors import DataError
from repro.core.miner import mine
from repro.core.rule import Rule, WILDCARD
from repro.data.generators import SyntheticSpec, generate, flight_table


def _binary_table(num_rows=600, seed=11):
    spec = SyntheticSpec(
        num_rows=num_rows,
        cardinalities=[5, 4, 6],
        skew=0.6,
        num_planted_rules=3,
        planted_arity=2,
        measure_kind="binary",
        base_measure=0.25,
        effect_scale=3.0,
    )
    table, _ = generate(spec, seed=seed)
    return table


class TestBinaryKl:
    def test_zero_for_perfect_estimates(self):
        m = np.array([1.0, 0.0, 1.0])
        assert binary_kl_divergence(m, m) == pytest.approx(0.0, abs=1e-6)

    def test_positive_for_wrong_estimates(self):
        m = np.array([1.0, 0.0])
        q = np.array([0.5, 0.5])
        assert binary_kl_divergence(m, q) > 0

    def test_requires_binary_measure(self):
        with pytest.raises(DataError):
            binary_kl_divergence(np.array([0.5]), np.array([0.5]))

    def test_clips_out_of_range_estimates(self):
        m = np.array([1.0, 0.0])
        q = np.array([1.5, -0.5])
        assert np.isfinite(binary_kl_divergence(m, q))


class TestElGebalyMiner:
    def test_mines_k_rules_with_decreasing_kl(self):
        table = _binary_table()
        result = ElGebalyMiner(k=4, sample_size=32, seed=1).mine(table)
        assert len(result.rules) <= 5
        assert result.rules[0].is_root()
        diffs = np.diff(result.kl_trace)
        assert np.all(diffs <= 1e-9)

    def test_kl_threshold_stops_early(self):
        table = _binary_table()
        full = ElGebalyMiner(k=6, sample_size=32, seed=1).mine(table)
        stopped = ElGebalyMiner(
            k=6, sample_size=32, seed=1,
            kl_threshold=full.kl_trace[1],
        ).mine(table)
        assert len(stopped.rules) <= len(full.rules)

    def test_rejects_numeric_measure(self, flights):
        with pytest.raises(DataError):
            ElGebalyMiner(k=2).mine(flights)

    def test_matches_naive_sirum_rules(self):
        # Naive SIRUM is the distributed port of [16]: same greedy
        # choices on the same sample produce the same rule list.
        table = _binary_table()
        centralized = ElGebalyMiner(k=3, sample_size=32, seed=4).mine(table)
        distributed = mine(
            table, k=3, variant="naive", sample_size=32, seed=4
        )
        assert centralized.rules == [m.rule for m in distributed.rule_set]

    def test_binary_kl_available(self):
        table = _binary_table()
        result = ElGebalyMiner(k=2, sample_size=16, seed=0).mine(table)
        assert result.final_binary_kl >= 0


class TestSarawagiExplorer:
    def test_explores_with_prior_rules(self, flights):
        london = flights.encoder("Destination").encode_existing("London")
        prior = [Rule((WILDCARD, WILDCARD, london))]
        result = SarawagiExplorer(k=2).explore(flights, prior_rules=prior)
        assert prior[0] in result.rules
        assert len(result.rules) >= 3

    def test_reset_scaling_costs_more_iterations(self, flights):
        # The [29] reset behaviour repeats all prior work per rule —
        # strictly more total iterations than carrying lambdas over.
        explorer = SarawagiExplorer(k=3)
        result = explorer.explore(flights)
        sirum = mine(flights, k=3, variant="baseline", sample_size=14,
                     seed=1)
        assert result.scaling_iterations > sirum.scaling_iterations

    def test_overlap_restriction(self, flights):
        result = SarawagiExplorer(k=4, restrict_overlap=True).explore(flights)
        rules = result.rules
        for i, a in enumerate(rules):
            for b in rules[i + 1:]:
                admissible = (
                    a.is_disjoint(b)
                    or a.is_ancestor_of(b)
                    or b.is_ancestor_of(a)
                )
                assert admissible

    def test_kl_trace_decreases(self, flights):
        result = SarawagiExplorer(k=3).explore(flights)
        diffs = np.diff(result.kl_trace)
        assert np.all(diffs <= 1e-9)

    def test_bad_prior_rule_rejected(self, flights):
        with pytest.raises(DataError):
            SarawagiExplorer(k=1).explore(
                flights, prior_rules=[Rule((6, 6, 6))]
            )
