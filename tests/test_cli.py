"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import _print_result, build_parser, main
from repro.data.csvio import write_csv
from repro.data.generators import SyntheticSpec, flight_table, generate


@pytest.fixture
def flights_csv(tmp_path):
    path = tmp_path / "flights.csv"
    write_csv(flight_table(), path)
    return str(path)


@pytest.fixture
def dirty_csv(tmp_path):
    spec = SyntheticSpec(
        num_rows=400,
        cardinalities=[4, 4],
        measure_kind="binary",
        base_measure=0.2,
        num_planted_rules=1,
        planted_arity=1,
        effect_scale=3.0,
        measure_name="dirty",
    )
    table, _ = generate(spec, seed=3)
    path = tmp_path / "dirty.csv"
    write_csv(table, path)
    return str(path)


class TestParser:
    def test_all_subcommands_registered(self):
        import argparse

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        assert set(subparsers.choices) == {
            "mine", "explore", "clean", "sql", "serve", "shard-worker"
        }

    def test_mine_defaults(self):
        args = build_parser().parse_args(
            ["mine", "data.csv", "--measure", "delay"]
        )
        assert args.command == "mine"
        assert args.k == 10
        assert args.variant == "optimized"
        assert args.sample_size == 64
        assert args.seed == 0
        assert args.dimensions is None

    def test_explore_accepts_prior(self):
        args = build_parser().parse_args(
            ["explore", "data.csv", "--measure", "delay",
             "--prior", "day,origin"]
        )
        assert args.prior == "day,origin"

    def test_sql_requires_query(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sql", "data.csv", "--measure", "m"])
        assert "--query" in capsys.readouterr().err

    def test_serve_defaults(self):
        args = build_parser().parse_args(
            ["serve", "data.csv", "--measure", "delay"]
        )
        assert args.clients == 8
        assert args.requests == 32
        assert args.workers == 4
        assert args.queue_depth == 64
        assert args.compare_serial is False
        # Scripted-workload mode is the default; --listen opts in to
        # the network front door.
        assert args.listen is None
        assert args.tenant_quota == 8
        assert args.serve_seconds is None

    def test_serve_listen_option(self):
        args = build_parser().parse_args(
            ["serve", "data.csv", "--measure", "delay",
             "--listen", "0.0.0.0:7711", "--tenant-quota", "3",
             "--serve-seconds", "0.5"]
        )
        assert args.listen == "0.0.0.0:7711"
        assert args.tenant_quota == 3
        assert args.serve_seconds == 0.5

    def test_parse_listen(self):
        from repro.cli import _parse_listen
        from repro.common.errors import ReproError

        assert _parse_listen("127.0.0.1:7711") == ("127.0.0.1", 7711)
        assert _parse_listen("0.0.0.0:0") == ("0.0.0.0", 0)
        with pytest.raises(ReproError, match="HOST:PORT"):
            _parse_listen("no-port-here")
        with pytest.raises(ReproError, match="HOST:PORT"):
            _parse_listen(":7711")
        with pytest.raises(ReproError, match="integer"):
            _parse_listen("host:not-a-number")

    def test_measure_is_required(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "data.csv"])
        assert "--measure" in capsys.readouterr().err

    def test_unknown_variant_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "data.csv", "--measure", "m",
                 "--variant", "turbo"]
            )


class TestPrintResult:
    def test_formats_rule_table_and_metrics(self):
        table = flight_table()
        from repro.core.miner import mine as mine_fn

        result = mine_fn(table, k=1, variant="baseline", sample_size=8,
                         seed=0)
        out = io.StringIO()
        _print_result(table, result, out)
        text = out.getvalue()
        assert text.startswith("| ")  # markdown rule table first
        assert "AVG(Delay)" in text
        assert "rules: %d\n" % len(result.rule_set) in text
        assert "kl_divergence:" in text
        assert "information_gain:" in text
        assert "simulated_cluster_seconds:" in text


class TestMine:
    def test_prints_rule_table(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["mine", flights_csv, "--measure", "Delay", "--k", "2",
             "--variant", "baseline", "--sample-size", "14", "--seed", "1"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "AVG(Delay)" in text
        assert "London" in text
        assert "kl_divergence:" in text

    def test_dimension_subset(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["mine", flights_csv, "--measure", "Delay", "--k", "1",
             "--dimensions", "Destination", "--sample-size", "14"],
            out=out,
        )
        assert code == 0
        assert "Destination" in out.getvalue()

    def test_missing_measure_is_reported(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["mine", flights_csv, "--measure", "Nope"], out=out
        )
        assert code == 2
        assert "error:" in out.getvalue()


class TestExplore:
    def test_explore_with_prior(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["explore", flights_csv, "--measure", "Delay", "--k", "2",
             "--prior", "Day"],
            out=out,
        )
        assert code == 0
        assert "information_gain:" in out.getvalue()


class TestClean:
    def test_clean_lists_deviations(self, dirty_csv):
        out = io.StringIO()
        code = main(
            ["clean", dirty_csv, "--measure", "dirty", "--k", "3",
             "--variant", "baseline", "--sample-size", "32"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "top deviations" in text
        assert "rate=" in text

    def test_clean_rejects_numeric_measure(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["clean", flights_csv, "--measure", "Delay"], out=out
        )
        assert code == 2


class TestSql:
    def test_query_prints_result_table(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["sql", flights_csv, "--measure", "Delay", "--query",
             "SELECT Destination, COUNT(*) c FROM data "
             "GROUP BY Destination ORDER BY c DESC LIMIT 2"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "Destination" in text
        assert "(2 rows)" in text

    def test_cube_query(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["sql", flights_csv, "--measure", "Delay", "--query",
             "SELECT Day, SUM(Delay) s FROM data GROUP BY ROLLUP(Day) "
             "ORDER BY s DESC LIMIT 1"],
            out=out,
        )
        assert code == 0
        assert "145" in out.getvalue()  # the grand-total row wins

    def test_explain_prints_plan(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["sql", flights_csv, "--measure", "Delay", "--explain",
             "--query", "SELECT Day FROM data WHERE Delay > 10"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "Scan" in text
        assert "filtered" in text

    def test_sql_error_reported(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["sql", flights_csv, "--measure", "Delay",
             "--query", "SELECT missing_column FROM data"],
            out=out,
        )
        assert code == 2
        assert "error:" in out.getvalue()

    def test_syntax_error_reported(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["sql", flights_csv, "--measure", "Delay",
             "--query", "SELEKT * FROM data"],
            out=out,
        )
        assert code == 2


class TestServe:
    def test_scripted_workload_reports_stats(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["serve", flights_csv, "--measure", "Delay",
             "--clients", "4", "--requests", "12", "--workers", "2",
             "--k", "2", "--sample-size", "8", "--compare-serial"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "served 12 requests from 4 clients" in text
        assert "latency: mean=" in text
        assert "cache:" in text
        assert "results identical: True" in text

    def test_listen_serves_and_drains(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["serve", flights_csv, "--measure", "Delay",
             "--workers", "2", "--listen", "127.0.0.1:0",
             "--serve-seconds", "0.1"],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "serving dataset 'data' (14 rows) on 127.0.0.1:" in text
        assert "draining..." in text
        assert "all jobs flushed: True" in text

    def test_listen_bad_address_is_reported(self, flights_csv):
        out = io.StringIO()
        code = main(
            ["serve", flights_csv, "--measure", "Delay",
             "--listen", "nonsense"],
            out=out,
        )
        assert code == 2
        assert "error:" in out.getvalue()
        assert "HOST:PORT" in out.getvalue()


class TestShardWorkerFlags:
    def test_shard_worker_defaults(self):
        args = build_parser().parse_args(["shard-worker"])
        assert args.listen == "127.0.0.1:0"
        assert args.block_cache_bytes is None
        assert args.no_local_files is False

    def test_shard_worker_shared_nothing_flags(self):
        args = build_parser().parse_args(
            ["shard-worker", "--block-cache-bytes", "1048576",
             "--no-local-files"]
        )
        assert args.block_cache_bytes == 1048576
        assert args.no_local_files is True

    def test_serve_shard_workers_flag(self):
        args = build_parser().parse_args(
            ["serve", "data.csv", "--measure", "delay",
             "--shard-workers", "h1:7731,h2:7731",
             "--executor", "remote"]
        )
        assert args.shard_workers == "h1:7731,h2:7731"
        assert args.executor == "remote"

    def test_serve_remote_workload_end_to_end(self, flights_csv):
        from repro.net.worker import ShardWorker

        with ShardWorker() as worker:
            out = io.StringIO()
            code = main(
                ["serve", flights_csv, "--measure", "Delay",
                 "--clients", "2", "--requests", "4", "--workers", "2",
                 "--k", "2", "--sample-size", "8",
                 "--executor", "remote",
                 "--shard-workers", worker.address,
                 "--compare-serial"],
                out=out,
            )
            text = out.getvalue()
            stages = worker.stats()["stages"]
        assert code == 0
        assert "results identical: True" in text
        assert stages > 0
