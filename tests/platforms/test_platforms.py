"""Tests for the platform simulators (thesis §2.6 / §5.2)."""

import pytest

from repro.common.errors import ConfigError
from repro.platforms import (
    PLATFORMS,
    make_platform_cluster,
    run_baseline_sirum,
)
from repro.data.generators import income_table


class TestRegistry:
    def test_all_platforms_registered(self):
        assert set(PLATFORMS) == {"spark", "postgres", "hive", "sparksql"}

    def test_unknown_platform(self):
        with pytest.raises(ConfigError):
            make_platform_cluster("oracle")

    def test_postgres_is_single_core(self):
        cluster = make_platform_cluster("postgres")
        assert cluster.spec.num_executors == 1
        assert cluster.spec.cores_per_executor == 1

    def test_hive_pays_job_launch(self):
        hive = make_platform_cluster("hive")
        spark = make_platform_cluster("spark")
        assert hive.cost.job_launch_seconds > spark.cost.job_launch_seconds

    def test_sparksql_rates_scaled_up(self):
        sql = make_platform_cluster("sparksql")
        spark = make_platform_cluster("spark")
        assert sql.cost.op_seconds > spark.cost.op_seconds


class TestPlatformComparison:
    """The §5.2 ordering: results identical, costs ranked."""

    @pytest.fixture(scope="class")
    def runs(self):
        table = income_table(num_rows=600)
        results = {}
        for name in ("spark", "postgres", "hive", "sparksql"):
            result, _cluster = run_baseline_sirum(
                name, table, k=2, sample_size=16, num_executors=4, seed=0
            )
            results[name] = result
        return results

    def test_results_identical_across_platforms(self, runs):
        reference = [m.rule for m in runs["spark"].rule_set]
        for name, result in runs.items():
            assert [m.rule for m in result.rule_set] == reference, name

    def test_spark_beats_postgres(self, runs):
        # Thesis Figure 5.1: PostgreSQL several times slower.
        ratio = (
            runs["postgres"].simulated_seconds
            / runs["spark"].simulated_seconds
        )
        assert ratio > 2

    def test_spark_beats_hive(self, runs):
        # Thesis Figure 5.2: Hive several times slower again.
        ratio = runs["hive"].simulated_seconds / runs["spark"].simulated_seconds
        assert ratio > 2

    def test_spark_beats_sparksql(self, runs):
        assert (
            runs["sparksql"].simulated_seconds
            > runs["spark"].simulated_seconds
        )


class TestSharedCatalogEngine:
    def test_make_sql_engine_accepts_existing_catalog(self):
        from repro.platforms import make_sql_engine
        from repro.sql.catalog import Catalog

        catalog = Catalog()
        catalog.register_rows("t", ["a", "m"], [("x", 1.0), ("y", 2.0)])
        engine, cluster = make_sql_engine(
            "postgres", num_executors=1, catalog=catalog
        )
        assert engine.catalog is catalog
        assert engine.query("SELECT SUM(m) FROM t").scalar() == 3.0
        # The query was metered through the platform's cost regime.
        assert cluster.metrics.simulated_seconds > 0

    def test_fresh_catalog_by_default(self):
        from repro.platforms import make_sql_engine

        engine_a, _ = make_sql_engine("postgres", num_executors=1)
        engine_b, _ = make_sql_engine("postgres", num_executors=1)
        assert engine_a.catalog is not engine_b.catalog
