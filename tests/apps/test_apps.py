"""Tests for the application layer (summarization, exploration, cleaning)."""

import numpy as np
import pytest

from repro.apps import (
    diagnose_dirty_records,
    explore_cube,
    group_by_rules,
    lowest_cardinality_dimensions,
    summarize,
)
from repro.common.errors import ConfigError, DataError
from repro.core.rule import Rule, WILDCARD
from repro.data.generators import SyntheticSpec, generate


class TestSummarize:
    def test_returns_mining_result(self, flights):
        result = summarize(flights, k=2, variant="baseline", sample_size=14)
        assert len(result.rule_set) == 3
        assert result.rule_set[0].rule.is_root()


class TestCubeExploration:
    def test_lowest_cardinality_dimensions(self, flights):
        # Day has 7 values, Origin 7, Destination 7 in the flight data;
        # synthesize a clearer case.
        spec = SyntheticSpec(
            num_rows=200, cardinalities=[2, 9, 4], num_planted_rules=1
        )
        table, _ = generate(spec, seed=0)
        dims = lowest_cardinality_dimensions(table, 2)
        assert dims == ["A0", "A2"]

    def test_too_many_dimensions_requested(self, flights):
        with pytest.raises(ConfigError):
            lowest_cardinality_dimensions(flights, 10)

    def test_group_by_rules_one_per_active_value(self, flights):
        rules = group_by_rules(flights, "Destination")
        assert len(rules) == flights.domain_size("Destination")
        for rule in rules:
            assert rule.num_bound == 1

    def test_explore_cube_excludes_prior_knowledge(self):
        spec = SyntheticSpec(
            num_rows=400, cardinalities=[3, 4, 5],
            num_planted_rules=3, effect_scale=20.0,
        )
        table, _ = generate(spec, seed=1)
        result = explore_cube(table, k=3, prior_dimensions=["A0"])
        prior = set(group_by_rules(table, "A0"))
        mined = [m for m in result.rule_set if m.iteration > 0]
        assert len(mined) >= 1
        for mined_rule in mined:
            assert mined_rule.rule not in prior

    def test_explore_cube_defaults_to_two_lowest_cardinality(self):
        spec = SyntheticSpec(
            num_rows=300, cardinalities=[2, 8, 3],
            num_planted_rules=2, effect_scale=15.0,
        )
        table, _ = generate(spec, seed=2)
        result = explore_cube(table, k=2)
        prior_rules = [m for m in result.rule_set if m.iteration == 0]
        # Root + the groups of the two smallest dimensions (2 + 3).
        assert len(prior_rules) == 1 + 2 + 3


class TestCleaning:
    def _dirty_table(self):
        spec = SyntheticSpec(
            num_rows=1500,
            cardinalities=[6, 5, 4],
            skew=0.5,
            num_planted_rules=2,
            planted_arity=2,
            measure_kind="binary",
            base_measure=0.1,
            effect_scale=4.0,
            measure_name="IsDirty",
        )
        return generate(spec, seed=7)

    def test_finds_dirty_concentrations(self):
        table, _ = self._dirty_table()
        result, findings = diagnose_dirty_records(
            table, k=3, variant="baseline", sample_size=32
        )
        assert findings
        overall = table.measure_mean()
        # Findings are ordered by dirty-rate deviation.
        deviations = [abs(f.avg_measure - overall) for f in findings]
        assert deviations == sorted(deviations, reverse=True)

    def test_rejects_non_binary_measure(self, flights):
        with pytest.raises(DataError):
            diagnose_dirty_records(flights, k=2)
