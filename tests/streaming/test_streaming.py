"""Tests for streaming SIRUM (thesis §7 future work)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, DataError
from repro.core.config import SirumConfig
from repro.core.rule import Rule, WILDCARD
from repro.data.generators import SyntheticSpec, generate
from repro.streaming import (
    IncrementalSirum,
    MicroBatchStream,
    ReservoirSample,
)


def _stream_table(num_rows=1200, seed=5, effect=30.0, planted_attr=0,
                  planted_code=0):
    spec = SyntheticSpec(
        num_rows=num_rows,
        cardinalities=[5, 5, 5],
        skew=0.2,
        num_planted_rules=0,
        planted_arity=1,
        effect_scale=1.0,
        noise_scale=0.5,
        base_measure=10.0,
    )
    table, _ = generate(spec, seed=seed)
    measure = table.measure.copy()
    mask = table.dimension_columns()[planted_attr] == planted_code
    measure[mask] += effect
    return table.with_measure(measure)


class TestMicroBatchStream:
    def test_from_table_splits_evenly(self, flights):
        stream = MicroBatchStream.from_table(flights, 5)
        assert len(stream) == 3
        assert stream.total_rows == 14

    def test_schema_mismatch_rejected(self, flights, small_income):
        with pytest.raises(DataError):
            MicroBatchStream.from_tables([flights, small_income])

    def test_empty_stream_rejected(self):
        with pytest.raises(DataError):
            MicroBatchStream([])

    def test_invalid_batch_size(self, flights):
        with pytest.raises(DataError):
            MicroBatchStream.from_table(flights, 0)


class TestReservoir:
    def test_fills_to_capacity(self):
        reservoir = ReservoirSample(5, seed=1)
        for i in range(3):
            reservoir.offer((i,))
        assert len(reservoir) == 3
        for i in range(10):
            reservoir.offer((i,))
        assert len(reservoir) == 5
        assert reservoir.seen == 13

    def test_sample_is_subset_of_stream(self):
        reservoir = ReservoirSample(8, seed=2)
        offered = [(i, i % 3) for i in range(100)]
        for row in offered:
            reservoir.offer(row)
        assert all(row in offered for row in reservoir.rows())

    def test_roughly_uniform_inclusion(self):
        # Each item should be kept with probability capacity/seen;
        # check the first item's inclusion frequency over trials.
        hits = 0
        trials = 300
        for seed in range(trials):
            reservoir = ReservoirSample(10, seed=seed)
            for i in range(100):
                reservoir.offer((i,))
            if (0,) in reservoir.rows():
                hits += 1
        assert 0.04 < hits / trials < 0.22   # expect ~0.10

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            ReservoirSample(0)


class TestIncrementalSirum:
    def _miner(self, **kwargs):
        config = SirumConfig(k=3, sample_size=32, num_partitions=4)
        kwargs.setdefault("seed", 1)
        return IncrementalSirum(config=config, **kwargs)

    def test_first_batch_mines(self):
        table = _stream_table()
        stream = MicroBatchStream.from_table(table, 400)
        miner = self._miner()
        snapshot = miner.process(next(iter(stream)))
        assert snapshot.remined
        assert snapshot.rules
        assert snapshot.rules[0].is_root()

    def test_stable_stream_does_not_remine(self):
        table = _stream_table()
        stream = MicroBatchStream.from_table(table, 300)
        miner = self._miner(drift_factor=2.0)
        snapshots = miner.run(stream)
        assert snapshots[0].remined
        assert not any(s.remined for s in snapshots[1:])

    def test_concept_drift_triggers_remine(self):
        # First half: effect on attribute 0; second half: the effect
        # moves to attribute 1 — the old rules stop explaining the data.
        first = _stream_table(num_rows=800, seed=5, planted_attr=0)
        second = _stream_table(num_rows=800, seed=9, planted_attr=1,
                               effect=60.0)
        batches = (
            list(MicroBatchStream.from_table(first, 400))
            + list(MicroBatchStream.from_table(second, 400))
        )
        miner = self._miner(drift_factor=1.2, window_batches=2)
        snapshots = [miner.process(batch) for batch in batches]
        assert any(s.remined for s in snapshots[2:])
        # After adapting, some rule binds the new driving attribute.
        final_rules = snapshots[-1].rules
        assert any(
            rule.values[1] != WILDCARD for rule in final_rules
        )

    def test_scheduled_remine(self):
        table = _stream_table()
        stream = MicroBatchStream.from_table(table, 200)
        miner = self._miner(drift_factor=100.0, remine_interval=2)
        snapshots = miner.run(stream)
        remines = [s.remined for s in snapshots]
        assert remines[0]
        assert any(remines[1:])

    def test_window_limits_working_set(self):
        table = _stream_table(num_rows=900)
        stream = MicroBatchStream.from_table(table, 300)
        miner = self._miner(window_batches=1)
        snapshots = miner.run(stream)
        assert all(s.total_rows == 300 for s in snapshots)

    def test_refit_keeps_constraints(self):
        table = _stream_table()
        stream = MicroBatchStream.from_table(table, 400)
        miner = self._miner(drift_factor=50.0)
        snapshots = miner.run(stream)
        # KL stays finite and positive; rules persist across batches.
        for snapshot in snapshots:
            assert np.isfinite(snapshot.kl)
        assert snapshots[-1].rules

    def test_empty_batch_rejected(self, flights):
        miner = self._miner()
        with pytest.raises(DataError):
            miner.process(flights.slice(0, 0))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            IncrementalSirum(drift_factor=0.5)
        with pytest.raises(ConfigError):
            IncrementalSirum(remine_interval=0)
        with pytest.raises(ConfigError):
            IncrementalSirum(window_batches=0)
