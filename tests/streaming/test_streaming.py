"""Tests for streaming SIRUM (thesis §7 future work)."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, DataError
from repro.core.config import SirumConfig
from repro.core.rule import Rule, WILDCARD
from repro.data.generators import SyntheticSpec, generate
from repro.data.schema import Schema
from repro.data.table import Table
from repro.streaming import (
    IncrementalSirum,
    MicroBatchStream,
    ReservoirSample,
)
from repro.streaming.incremental import _WorkingSet


def _stream_table(num_rows=1200, seed=5, effect=30.0, planted_attr=0,
                  planted_code=0):
    spec = SyntheticSpec(
        num_rows=num_rows,
        cardinalities=[5, 5, 5],
        skew=0.2,
        num_planted_rules=0,
        planted_arity=1,
        effect_scale=1.0,
        noise_scale=0.5,
        base_measure=10.0,
    )
    table, _ = generate(spec, seed=seed)
    measure = table.measure.copy()
    mask = table.dimension_columns()[planted_attr] == planted_code
    measure[mask] += effect
    return table.with_measure(measure)


class TestMicroBatchStream:
    def test_from_table_splits_evenly(self, flights):
        stream = MicroBatchStream.from_table(flights, 5)
        assert len(stream) == 3
        assert stream.total_rows == 14

    def test_schema_mismatch_rejected(self, flights, small_income):
        with pytest.raises(DataError):
            MicroBatchStream.from_tables([flights, small_income])

    def test_empty_stream_rejected(self):
        with pytest.raises(DataError):
            MicroBatchStream([])

    def test_invalid_batch_size(self, flights):
        with pytest.raises(DataError):
            MicroBatchStream.from_table(flights, 0)


class TestReservoir:
    def test_fills_to_capacity(self):
        reservoir = ReservoirSample(5, seed=1)
        for i in range(3):
            reservoir.offer((i,))
        assert len(reservoir) == 3
        for i in range(10):
            reservoir.offer((i,))
        assert len(reservoir) == 5
        assert reservoir.seen == 13

    def test_sample_is_subset_of_stream(self):
        reservoir = ReservoirSample(8, seed=2)
        offered = [(i, i % 3) for i in range(100)]
        for row in offered:
            reservoir.offer(row)
        assert all(row in offered for row in reservoir.rows())

    def test_roughly_uniform_inclusion(self):
        # Each item should be kept with probability capacity/seen;
        # check the first item's inclusion frequency over trials.
        hits = 0
        trials = 300
        for seed in range(trials):
            reservoir = ReservoirSample(10, seed=seed)
            for i in range(100):
                reservoir.offer((i,))
            if (0,) in reservoir.rows():
                hits += 1
        assert 0.04 < hits / trials < 0.22   # expect ~0.10

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            ReservoirSample(0)

    def _row_id_table(self, num_rows):
        schema = Schema(["rid"], "m")
        return Table.from_rows(
            schema, [(i, 0.0) for i in range(num_rows)]
        )

    def test_offer_table_fills_then_samples(self):
        table = self._row_id_table(100)
        reservoir = ReservoirSample(8, seed=3)
        reservoir.offer_table(table)
        assert len(reservoir) == 8
        assert reservoir.seen == 100
        offered = {(i,) for i in range(100)}
        assert all(row in offered for row in reservoir.rows())
        # Distinct slots hold distinct rows (row ids are unique).
        assert len(set(reservoir.rows())) == 8

    def test_offer_table_deterministic_per_seed(self):
        table = self._row_id_table(200)
        first = ReservoirSample(10, seed=42)
        second = ReservoirSample(10, seed=42)
        other = ReservoirSample(10, seed=43)
        first.offer_table(table)
        second.offer_table(table)
        other.offer_table(table)
        assert first.rows() == second.rows()
        assert first.rows() != other.rows()

    def test_offer_table_across_batches(self):
        # Batched offers keep counting stream ranks across calls.
        table = self._row_id_table(300)
        reservoir = ReservoirSample(16, seed=0)
        for start in range(0, 300, 60):
            reservoir.offer_table(table.slice(start, start + 60))
        assert reservoir.seen == 300
        assert len(reservoir) == 16
        # Rows from late batches do get in (not just the fill prefix).
        assert any(row[0] >= 60 for row in reservoir.rows())

    def test_offer_table_kept_sample_is_uniform(self):
        # Every stream position should be kept with probability
        # capacity / n.  Check early, middle and late probes over many
        # seeds; with p = 0.1 and 200 trials the bounds are ~4 sigma.
        num_rows, capacity, trials = 400, 40, 200
        table = self._row_id_table(num_rows)
        probes = {0: 0, num_rows // 2: 0, num_rows - 1: 0}
        for seed in range(trials):
            reservoir = ReservoirSample(capacity, seed=seed)
            reservoir.offer_table(table)
            kept = {row[0] for row in reservoir.rows()}
            for probe in probes:
                if probe in kept:
                    probes[probe] += 1
        expected = capacity / num_rows
        for probe, hits in probes.items():
            assert abs(hits / trials - expected) < 0.09, (
                "row %d kept with frequency %.3f, expected ~%.2f"
                % (probe, hits / trials, expected)
            )


class TestWorkingSet:
    def _batches(self, num_rows=600, batch_size=150):
        table = _stream_table(num_rows=num_rows)
        return list(MicroBatchStream.from_table(table, batch_size))

    def _assert_matches(self, working, batches):
        arity = batches[0].schema.arity
        for j in range(arity):
            np.testing.assert_array_equal(
                working.dimension_columns()[j],
                np.concatenate([b.dimension_columns()[j] for b in batches]),
            )
        np.testing.assert_array_equal(
            working.measure, np.concatenate([b.measure for b in batches])
        )

    def test_matches_naive_concatenation(self):
        batches = self._batches()
        ws = _WorkingSet()
        for i, batch in enumerate(batches):
            ws.append(batch)
            assert len(ws) == sum(len(b) for b in batches[: i + 1])
            self._assert_matches(ws.table(), batches[: i + 1])

    def test_window_slide_matches_naive(self):
        batches = self._batches()
        ws = _WorkingSet(window_batches=2)
        for i, batch in enumerate(batches):
            ws.append(batch)
            live = batches[max(0, i - 1): i + 1]
            assert ws.num_batches == len(live)
            self._assert_matches(ws.table(), live)

    def test_table_cached_between_mutations(self):
        batches = self._batches()
        ws = _WorkingSet()
        ws.append(batches[0])
        first = ws.table()
        assert ws.table() is first  # no re-concatenation per call
        ws.append(batches[1])
        assert ws.table() is not first  # append invalidates

    def test_windowed_buffer_stays_bounded(self):
        # A bounded sliding window must keep a bounded buffer: growth
        # sizes off the live rows, not the accumulated dead prefix.
        batch = self._batches(num_rows=300, batch_size=100)[0]
        ws = _WorkingSet(window_batches=2)
        capacities = set()
        for _ in range(200):
            ws.append(batch)
            capacities.add(ws._measure.size)
            assert len(ws) <= 2 * len(batch)
        assert max(capacities) <= 4 * 2 * len(batch)

    def test_snapshot_unchanged_by_later_appends(self):
        batches = self._batches()
        ws = _WorkingSet(window_batches=1)
        ws.append(batches[0])
        snapshot = ws.table()
        frozen_dims = [col.copy() for col in snapshot.dimension_columns()]
        frozen_measure = snapshot.measure.copy()
        for batch in batches[1:]:
            ws.append(batch)  # slides the window and grows the buffer
        for col, frozen in zip(snapshot.dimension_columns(), frozen_dims):
            np.testing.assert_array_equal(col, frozen)
        np.testing.assert_array_equal(snapshot.measure, frozen_measure)


class TestIncrementalSirum:
    def _miner(self, **kwargs):
        config = SirumConfig(k=3, sample_size=32, num_partitions=4)
        kwargs.setdefault("seed", 1)
        return IncrementalSirum(config=config, **kwargs)

    def test_first_batch_mines(self):
        table = _stream_table()
        stream = MicroBatchStream.from_table(table, 400)
        miner = self._miner()
        snapshot = miner.process(next(iter(stream)))
        assert snapshot.remined
        assert snapshot.rules
        assert snapshot.rules[0].is_root()

    def test_stable_stream_does_not_remine(self):
        table = _stream_table()
        stream = MicroBatchStream.from_table(table, 300)
        miner = self._miner(drift_factor=2.0)
        snapshots = miner.run(stream)
        assert snapshots[0].remined
        assert not any(s.remined for s in snapshots[1:])

    def test_concept_drift_triggers_remine(self):
        # First half: effect on attribute 0; second half: the effect
        # moves to attribute 1 — the old rules stop explaining the data.
        first = _stream_table(num_rows=800, seed=5, planted_attr=0)
        second = _stream_table(num_rows=800, seed=9, planted_attr=1,
                               effect=60.0)
        batches = (
            list(MicroBatchStream.from_table(first, 400))
            + list(MicroBatchStream.from_table(second, 400))
        )
        miner = self._miner(drift_factor=1.2, window_batches=2)
        snapshots = [miner.process(batch) for batch in batches]
        assert any(s.remined for s in snapshots[2:])
        # After adapting, some rule binds the new driving attribute.
        final_rules = snapshots[-1].rules
        assert any(
            rule.values[1] != WILDCARD for rule in final_rules
        )

    def test_scheduled_remine(self):
        table = _stream_table()
        stream = MicroBatchStream.from_table(table, 200)
        miner = self._miner(drift_factor=100.0, remine_interval=2)
        snapshots = miner.run(stream)
        remines = [s.remined for s in snapshots]
        assert remines[0]
        assert any(remines[1:])

    def test_window_limits_working_set(self):
        table = _stream_table(num_rows=900)
        stream = MicroBatchStream.from_table(table, 300)
        miner = self._miner(window_batches=1)
        snapshots = miner.run(stream)
        assert all(s.total_rows == 300 for s in snapshots)

    def test_refit_keeps_constraints(self):
        table = _stream_table()
        stream = MicroBatchStream.from_table(table, 400)
        miner = self._miner(drift_factor=50.0)
        snapshots = miner.run(stream)
        # KL stays finite and positive; rules persist across batches.
        for snapshot in snapshots:
            assert np.isfinite(snapshot.kl)
        assert snapshots[-1].rules

    def test_window_slide_past_all_rule_support_remines(self):
        # Batch A and batch B draw from *disjoint* value domains, so
        # every informative rule mined from A matches nothing in B.
        # With a one-batch window the refit becomes degenerate and must
        # fall back to a re-mine instead of raising DataError.
        rng = np.random.default_rng(0)
        rows = []
        for prefix, rows_per_half, effect_value in (("a", 300, "a0"),
                                                    ("b", 300, "b1")):
            for _ in range(rows_per_half):
                values = tuple(
                    "%s%d" % (prefix, rng.integers(0, 3)) for _ in range(3)
                )
                measure = 10.0 + rng.normal(0.0, 0.5)
                if values[0] == effect_value:
                    measure += 100.0
                rows.append(values + (measure,))
        table = Table.from_rows(Schema(["d0", "d1", "d2"], "m"), rows)
        batches = [table.slice(0, 300), table.slice(300, 600)]

        miner = self._miner(window_batches=1, drift_factor=1000.0)
        first = miner.process(batches[0])
        assert first.remined
        assert any(not rule.is_root() for rule in first.rules)
        # Before the fallback guard this raised
        # DataError("iterative scaling needs at least one rule")-style
        # degeneracy; now it must re-mine on the new window.
        second = miner.process(batches[1])
        assert second.remined
        assert second.total_rows == 300
        assert np.isfinite(second.kl)

    def test_refit_survivors_keep_refitting(self):
        # A stable stream keeps its informative rules: the degenerate
        # fallback must NOT fire when support survives.
        table = _stream_table()
        stream = MicroBatchStream.from_table(table, 300)
        miner = self._miner(drift_factor=1000.0)
        snapshots = miner.run(stream)
        assert snapshots[0].remined
        assert not any(s.remined for s in snapshots[1:])

    def test_empty_batch_rejected(self, flights):
        miner = self._miner()
        with pytest.raises(DataError):
            miner.process(flights.slice(0, 0))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            IncrementalSirum(drift_factor=0.5)
        with pytest.raises(ConfigError):
            IncrementalSirum(remine_interval=0)
        with pytest.raises(ConfigError):
            IncrementalSirum(window_batches=0)
