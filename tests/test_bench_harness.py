"""Tests for the benchmark harness helpers."""

import pytest

from repro.bench import (
    dataset_by_name,
    make_cluster,
    print_table,
    run_variant,
    speedup,
)
from repro.common.errors import ConfigError

#: Long-running suite: excluded from the fast loop (-m 'not slow').
pytestmark = pytest.mark.slow


class TestDatasetRegistry:
    @pytest.mark.parametrize("name", ["income", "gdelt", "susy", "tlc"])
    def test_known_datasets(self, name):
        table = dataset_by_name(name, num_rows=200)
        assert len(table) == 200

    def test_unknown_dataset(self):
        with pytest.raises(ConfigError):
            dataset_by_name("enron")

    def test_kwargs_forwarded(self):
        table = dataset_by_name("susy", num_rows=100, num_dimensions=12)
        assert table.schema.arity == 12


class TestRunVariant:
    def test_runs_on_fresh_cluster_by_default(self):
        table = dataset_by_name("gdelt", num_rows=400)
        result = run_variant(table, "baseline", k=2, sample_size=8, seed=1)
        assert result.simulated_seconds > 0

    def test_explicit_cluster_accumulates(self):
        table = dataset_by_name("gdelt", num_rows=400)
        cluster = make_cluster(num_executors=2)
        run_variant(table, "baseline", cluster=cluster, k=1,
                    sample_size=8, seed=1)
        after_first = cluster.metrics.simulated_seconds
        run_variant(table, "baseline", cluster=cluster, k=1,
                    sample_size=8, seed=1)
        assert cluster.metrics.simulated_seconds > after_first


class TestHelpers:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(10.0, 0.0) == float("inf")

    def test_print_table_renders(self, capsys):
        print_table(
            "Demo", ["a", "b"], [[1, 2.5], ["x", 0.0001]], note="shape"
        )
        out = capsys.readouterr().out
        assert "== Demo ==" in out
        assert "shape" in out
        assert "0.0001" in out

    def test_print_table_empty_rows(self, capsys):
        print_table("Empty", ["col"], [])
        assert "Empty" in capsys.readouterr().out
