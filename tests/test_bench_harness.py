"""Tests for the benchmark harness helpers."""

import pytest

from repro.bench import (
    dataset_by_name,
    make_cluster,
    print_table,
    run_variant,
    speedup,
)
from repro.common.errors import ConfigError

#: Long-running suite: excluded from the fast loop (-m 'not slow').
pytestmark = pytest.mark.slow


class TestDatasetRegistry:
    @pytest.mark.parametrize("name", ["income", "gdelt", "susy", "tlc"])
    def test_known_datasets(self, name):
        table = dataset_by_name(name, num_rows=200)
        assert len(table) == 200

    def test_unknown_dataset(self):
        with pytest.raises(ConfigError):
            dataset_by_name("enron")

    def test_kwargs_forwarded(self):
        table = dataset_by_name("susy", num_rows=100, num_dimensions=12)
        assert table.schema.arity == 12


class TestRunVariant:
    def test_runs_on_fresh_cluster_by_default(self):
        table = dataset_by_name("gdelt", num_rows=400)
        result = run_variant(table, "baseline", k=2, sample_size=8, seed=1)
        assert result.simulated_seconds > 0

    def test_explicit_cluster_accumulates(self):
        table = dataset_by_name("gdelt", num_rows=400)
        cluster = make_cluster(num_executors=2)
        run_variant(table, "baseline", cluster=cluster, k=1,
                    sample_size=8, seed=1)
        after_first = cluster.metrics.simulated_seconds
        run_variant(table, "baseline", cluster=cluster, k=1,
                    sample_size=8, seed=1)
        assert cluster.metrics.simulated_seconds > after_first


class TestHelpers:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(10.0, 0.0) == float("inf")

    def test_print_table_renders(self, capsys):
        print_table(
            "Demo", ["a", "b"], [[1, 2.5], ["x", 0.0001]], note="shape"
        )
        out = capsys.readouterr().out
        assert "== Demo ==" in out
        assert "shape" in out
        assert "0.0001" in out

    def test_print_table_empty_rows(self, capsys):
        print_table("Empty", ["col"], [])
        assert "Empty" in capsys.readouterr().out


class TestServiceWorkload:
    def test_build_workload_alternates_and_repeats(self):
        from repro.bench import build_service_workload

        requests = build_service_workload(
            "d", ["A", "B", "C"], "m", num_requests=12,
            distinct_mine_configs=2, distinct_queries=2,
        )
        assert len(requests) == 12
        kinds = [kind for kind, _ in requests]
        assert kinds == ["mine", "sql"] * 6
        # The script repeats itself: far fewer distinct payloads than
        # requests (that repetition is what the service caches).
        distinct = {
            (kind, tuple(sorted(p.items())) if isinstance(p, dict) else p)
            for kind, p in requests
        }
        assert len(distinct) == 4

    def test_latency_summary(self):
        from repro.bench import latency_summary

        summary = latency_summary([0.3, 0.1, 0.2, 0.4])
        assert summary["p50"] == 0.3
        assert summary["max"] == 0.4
        assert summary["mean"] == pytest.approx(0.25)
        assert latency_summary([])["p95"] == 0.0

    def test_serial_reference_and_results_match(self):
        from repro.bench import (
            build_service_workload,
            run_serial_reference,
            service_results_match,
        )
        from repro.data.generators import flight_table

        table = flight_table()
        requests = build_service_workload(
            "d", list(table.schema.dimensions), table.schema.measure,
            num_requests=4, k=1, sample_size=8,
        )
        first = run_serial_reference(table, "d", requests)
        second = run_serial_reference(table, "d", requests)
        assert service_results_match(first["results"], second["results"])
        assert first["throughput_rps"] > 0

    def test_results_match_rejects_differences(self):
        from repro.bench import service_results_match
        from repro.core.miner import mine
        from repro.data.generators import flight_table

        table = flight_table()
        a = mine(table, k=1, variant="baseline", sample_size=8, seed=0)
        b = mine(table, k=2, variant="baseline", sample_size=8, seed=0)
        assert service_results_match([a], [a])
        assert not service_results_match([a], [b])
        assert not service_results_match([a], [a, a])
