"""Cross-subsystem agreement: SQL engine vs cube package vs miner.

Three independent implementations compute candidate-rule aggregates:
the SQL engine's GROUP BY CUBE, the cube package's algorithms, and the
miner's exhaustive candidate generation.  They were written against the
same definitions (thesis §2.5, §3.1) and must agree exactly.
"""

import pytest

from repro.core.miner import mine
from repro.core.rule import WILDCARD
from repro.cube import hash_cube
from repro.cube.cuboid import positions_of
from repro.data.generators import flight_table, susy_table
from repro.platforms.sql_sirum import SqlSirum
from repro.sql import SqlEngine

#: Long-running suite: excluded from the fast loop (-m 'not slow').
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def flights():
    return flight_table()


class TestSqlVersusCubePackage:
    def test_cube_query_matches_hash_cube(self, flights):
        engine = SqlEngine()
        engine.register_table("f", flights)
        dims = list(flights.schema.dimensions)
        result = engine.query(
            "SELECT %s, %s, SUM(%s) s, COUNT(*) c FROM f GROUP BY CUBE(%s)"
            % (
                ", ".join('"%s"' % d for d in dims),
                ", ".join(
                    'GROUPING("%s") g%d' % (d, i) for i, d in enumerate(dims)
                ),
                flights.schema.measure,
                ", ".join('"%s"' % d for d in dims),
            )
        )
        cube = hash_cube(flights)
        arity = len(dims)
        assert len(result) == cube.num_groups()
        for row in result.rows:
            values = row[:arity]
            bits = row[arity:2 * arity]
            total, count = row[2 * arity], row[2 * arity + 1]
            mask = 0
            key = []
            for j in range(arity):
                if bits[j] == 0:
                    mask |= 1 << j
                    key.append(
                        flights.encoder(dims[j]).encode_existing(values[j])
                    )
            agg = cube.cuboids[mask][tuple(key)]
            assert agg.count == count
            assert agg.sum_measure == pytest.approx(total)

    def test_point_queries_match_sql_filters(self, flights):
        engine = SqlEngine()
        engine.register_table("f", flights)
        cube = hash_cube(flights)
        london = flights.encoder("Destination").encode_existing("London")
        agg = cube.point((WILDCARD, WILDCARD, london))
        row = engine.query(
            "SELECT COUNT(*), SUM(Delay) FROM f WHERE Destination = 'London'"
        ).rows[0]
        assert (agg.count, agg.sum_measure) == (row[0], pytest.approx(row[1]))


class TestSqlSirumVersusOperatorMiner:
    @pytest.mark.parametrize("seed", [1, 5])
    def test_same_kl_on_random_tables(self, seed):
        table = susy_table(num_rows=150, num_dimensions=4, seed=seed)
        sql_result = SqlSirum(k=2).mine(table)
        operator = mine(table, k=2, variant="naive", exhaustive=True)
        assert sql_result.final_kl == pytest.approx(
            operator.final_kl, rel=1e-9
        )

    def test_cube_point_answers_rule_aggregates(self, flights):
        """Every mined rule's (avg, count) is answerable from the cube."""
        cube = hash_cube(flights)
        result = mine(flights, k=3, variant="naive", exhaustive=True)
        for mined in result.rule_set:
            agg = cube.point(mined.rule.values)
            assert agg.count == mined.count
            assert agg.avg == pytest.approx(mined.avg_measure)


class TestColfileRoundTripThroughMiner:
    def test_mining_from_colfile_equals_mining_from_memory(self, tmp_path, flights):
        from repro.data.colfile import read_colfile, write_colfile

        path = tmp_path / "flights.col"
        write_colfile(flights, path, block_rows=4)
        reloaded = read_colfile(path)
        direct = mine(flights, k=2, variant="naive", exhaustive=True)
        via_file = mine(reloaded, k=2, variant="naive", exhaustive=True)
        assert [m.rule for m in direct.rule_set] == [
            m.rule for m in via_file.rule_set
        ]
        assert via_file.final_kl == pytest.approx(direct.final_kl)
