"""Cross-module integration tests: the thesis's claims at test scale."""

import numpy as np
import pytest

from repro.bench import dataset_by_name, make_cluster, run_variant
from repro.core.miner import mine
from repro.core.rule import Rule, WILDCARD
from repro.data.generators import SyntheticSpec, generate

#: Long-running suite: excluded from the fast loop (-m 'not slow').
pytestmark = pytest.mark.slow


class TestPlantedRuleRecovery:
    def test_miner_recovers_strong_planted_rule(self):
        spec = SyntheticSpec(
            num_rows=3000,
            cardinalities=[6, 6, 6, 6],
            skew=0.3,
            num_planted_rules=1,
            planted_arity=2,
            effect_scale=40.0,
            noise_scale=0.5,
        )
        table, planted = generate(spec, seed=21)
        conjunction, _ = planted[0]
        result = mine(table, k=3, variant="optimized", sample_size=64,
                      seed=3)
        mined = [m.rule for m in result.rule_set]
        # The planted conjunction (or an ancestor of it binding at least
        # one of its attributes to the planted value) must be found.
        hits = [
            rule for rule in mined
            if any(
                rule.values[attr] == code
                for attr, code in conjunction.items()
            )
        ]
        assert hits, "no mined rule touches the planted conjunction"


class TestOptimizationSpeedups:
    """Simulated-time orderings the thesis's evaluation establishes."""

    @pytest.fixture(scope="class")
    def gdelt(self):
        return dataset_by_name("gdelt", num_rows=3000)

    @pytest.fixture(scope="class")
    def results(self, gdelt):
        out = {}
        for variant in ("naive", "baseline", "rct", "fastpruning",
                        "multirule", "optimized"):
            out[variant] = run_variant(
                gdelt, variant, k=8, sample_size=32, seed=3
            )
        return out

    def test_baseline_beats_naive(self, results):
        assert (
            results["baseline"].simulated_seconds
            < results["naive"].simulated_seconds
        )

    def test_rct_speeds_up_iterative_scaling(self, results):
        assert (
            results["rct"].iterative_scaling_seconds
            < 0.8 * results["baseline"].iterative_scaling_seconds
        )

    def test_fast_pruning_speeds_up_pruning(self, results):
        assert (
            results["fastpruning"].phase_seconds("candidate_pruning")
            < 0.8 * results["baseline"].phase_seconds("candidate_pruning")
        )

    def test_multirule_speeds_up_rule_generation(self, results):
        assert (
            results["multirule"].rule_generation_seconds
            < 0.8 * results["baseline"].rule_generation_seconds
        )

    def test_optimized_is_fastest_overall(self, results):
        fastest = min(r.simulated_seconds for r in results.values())
        assert results["optimized"].simulated_seconds == pytest.approx(
            fastest
        )

    def test_quality_equivalent_across_variants(self, results):
        kls = [results[v].final_kl for v in ("naive", "baseline", "rct",
                                             "fastpruning")]
        assert max(kls) - min(kls) < 1e-9


class TestColumnGroupingAtHighDimensions:
    def test_fastancestor_reduces_emissions_on_susy(self):
        susy = dataset_by_name("susy", num_rows=1500, num_dimensions=14)
        base = run_variant(susy, "baseline", k=2, sample_size=16, seed=3)
        fast = run_variant(susy, "fastancestor", k=2, sample_size=16, seed=3)
        # Thesis Fig 5.8: column grouping cuts emitted ancestors.
        assert fast.ancestors_emitted < base.ancestors_emitted
        # And the candidate rules are identical (Appendix A).
        assert [m.rule for m in fast.rule_set] == \
            [m.rule for m in base.rule_set]


class TestMemoryPressure:
    def test_small_memory_forces_disk_reads(self):
        gdelt = dataset_by_name("gdelt", num_rows=2000)
        roomy = make_cluster(executor_memory_bytes=64 * 1024**2)
        tight = make_cluster(executor_memory_bytes=16 * 1024)
        fast = run_variant(gdelt, "baseline", cluster=roomy, k=2,
                           sample_size=16, seed=3)
        slow = run_variant(gdelt, "baseline", cluster=tight, k=2,
                           sample_size=16, seed=3)
        assert slow.metrics["counters"]["disk_read_bytes"] > \
            fast.metrics["counters"]["disk_read_bytes"]
        assert slow.simulated_seconds > fast.simulated_seconds


class TestStrongScaling:
    def test_more_executors_reduce_simulated_time(self):
        tlc = dataset_by_name("tlc", num_rows=4000)
        times = []
        for executors in (2, 8):
            cluster = make_cluster(num_executors=executors)
            result = run_variant(tlc, "optimized", cluster=cluster, k=3,
                                 sample_size=16, seed=3)
            times.append(result.simulated_seconds)
        assert times[1] < times[0]
