"""Partial-cube selection and query answering."""

import pytest

from repro.common.errors import DataError
from repro.core.rule import WILDCARD
from repro.cube import PartialCube, choose_cuboids, naive_cube
from repro.data.generators import flight_table, susy_table


@pytest.fixture(scope="module")
def flights():
    return flight_table()


@pytest.fixture(scope="module")
def full_cube(flights):
    return naive_cube(flights)


class TestSelection:
    def test_base_always_selected(self, full_cube):
        base = full_cube.lattice.base_mask
        selected = choose_cuboids(full_cube, budget_groups=len(
            full_cube.cuboids[base]))
        assert base in selected

    def test_budget_too_small_rejected(self, full_cube):
        with pytest.raises(DataError):
            choose_cuboids(full_cube, budget_groups=1)

    def test_larger_budget_selects_more(self, full_cube):
        small = choose_cuboids(full_cube, budget_groups=20)
        large = choose_cuboids(full_cube, budget_groups=100)
        assert set(small) <= set(large)

    def test_budget_respected(self, full_cube):
        budget = 40
        selected = choose_cuboids(full_cube, budget_groups=budget)
        stored = sum(len(full_cube.cuboids[m]) for m in selected)
        assert stored <= budget

    def test_unbounded_budget_reaches_optimal_answer_cost(self, full_cube):
        # The greedy stops at zero marginal benefit, so it may skip a
        # cuboid whose best materialized descendant is equally small —
        # but every cuboid must still be answerable at the optimal cost
        # (the size of its smallest descendant in the full cube).
        lattice = full_cube.lattice
        sizes = {mask: len(g) for mask, g in full_cube.cuboids.items()}
        selected = set(choose_cuboids(full_cube, budget_groups=10**9))
        for mask in full_cube.cuboids:
            achieved = min(
                sizes[c] for c in selected if lattice.is_ancestor(mask, c)
            )
            optimal = min(
                sizes[c] for c in sizes if lattice.is_ancestor(mask, c)
            )
            assert achieved == optimal


class TestAnswering:
    @pytest.fixture(scope="class")
    def partial(self, full_cube):
        selected = choose_cuboids(full_cube, budget_groups=30)
        return PartialCube(full_cube, selected)

    def test_every_cuboid_answerable(self, full_cube, partial):
        for mask, expected in full_cube.cuboids.items():
            assert partial.cuboid(mask) == expected

    def test_materialized_hit_is_free(self, partial):
        base = partial.lattice.base_mask
        partial.cuboid(base)
        assert partial.last_answer_cost == 0

    def test_rollup_cost_reported(self, full_cube, partial):
        unmaterialized = [
            mask for mask in full_cube.cuboids if mask not in partial.selected
        ]
        assert unmaterialized, "budget should have excluded something"
        partial.cuboid(unmaterialized[0])
        assert partial.last_answer_cost > 0

    def test_point_query_matches_full(self, flights, full_cube, partial):
        london = flights.encoder("Destination").encode_existing("London")
        values = (WILDCARD, WILDCARD, london)
        assert partial.point(values) == full_cube.point(values)

    def test_requires_base_cuboid(self, full_cube):
        with pytest.raises(DataError):
            PartialCube(full_cube, [0])

    def test_rejects_unmaterialized_selection(self, full_cube):
        partial_input = naive_cube(flight_table(), masks=[0b111])
        with pytest.raises(DataError):
            PartialCube(partial_input, [0b111, 0b1000])


class TestBuild:
    def test_build_from_table(self):
        table = susy_table(num_rows=150, num_dimensions=4, seed=9)
        partial = PartialCube.build(table, budget_groups=400)
        full = naive_cube(table)
        for mask in full.cuboids:
            assert partial.cuboid(mask) == full.cuboids[mask]

    def test_stored_groups_under_budget(self):
        table = susy_table(num_rows=150, num_dimensions=4, seed=9)
        partial = PartialCube.build(table, budget_groups=400)
        assert partial.stored_groups() <= 400
