"""GroupAggregate and MaterializedCube container behaviour."""

import pytest

from repro.common.errors import DataError
from repro.cube import naive_cube
from repro.cube.materialized import GroupAggregate, MaterializedCube
from repro.data.generators import flight_table


class TestGroupAggregate:
    def test_add_accumulates(self):
        agg = GroupAggregate()
        agg.add(2.0)
        agg.add(3.0)
        assert agg.count == 2
        assert agg.sum_measure == 5.0
        assert agg.avg == 2.5

    def test_merge(self):
        left = GroupAggregate(2, 10.0)
        right = GroupAggregate(3, 5.0)
        left.merge(right)
        assert (left.count, left.sum_measure) == (5, 15.0)

    def test_copy_is_independent(self):
        original = GroupAggregate(1, 1.0)
        clone = original.copy()
        clone.add(9.0)
        assert original.count == 1

    def test_empty_avg_raises(self):
        with pytest.raises(DataError):
            GroupAggregate().avg

    def test_equality_tolerates_float_noise(self):
        assert GroupAggregate(2, 1.0) == GroupAggregate(2, 1.0 + 1e-12)
        assert GroupAggregate(2, 1.0) != GroupAggregate(3, 1.0)


class TestMaterializedCube:
    @pytest.fixture(scope="class")
    def cube(self):
        return naive_cube(flight_table())

    def test_has_cuboid(self, cube):
        assert cube.has_cuboid(0)
        assert not cube.has_cuboid(0b11111)

    def test_missing_cuboid_raises(self, cube):
        with pytest.raises(DataError):
            cube.cuboid(0b10000)

    def test_num_groups_totals_all_cuboids(self, cube):
        assert cube.num_groups() == sum(
            len(groups) for groups in cube.cuboids.values()
        )

    def test_equality_requires_same_cuboid_keys(self, cube):
        partial = MaterializedCube(cube.arity, {0: cube.cuboids[0]})
        assert partial != cube

    def test_rollup_to_self_is_identity(self, cube):
        assert cube.roll_up(0b011, 0b011) == cube.cuboids[0b011]

    def test_repr_mentions_counts(self, cube):
        text = repr(cube)
        assert "cuboids=8" in text
