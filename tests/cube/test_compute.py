"""Cube computation: the four algorithms agree and are internally sound."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DataError
from repro.core.rule import WILDCARD
from repro.cube import buc_cube, hash_cube, naive_cube, sort_cube
from repro.data.generators import flight_table
from repro.data.schema import Schema
from repro.data.table import Table

ALGORITHMS = [naive_cube, hash_cube, sort_cube, buc_cube]


@pytest.fixture(scope="module")
def flights():
    return flight_table()


@pytest.fixture(scope="module")
def flight_cube(flights):
    return naive_cube(flights)


class TestAgreement:
    @pytest.mark.parametrize("algorithm", ALGORITHMS[1:])
    def test_matches_naive_on_flights(self, flights, flight_cube, algorithm):
        assert algorithm(flights) == flight_cube

    def test_every_cuboid_materialized(self, flight_cube, flights):
        assert len(flight_cube.cuboids) == 2 ** flights.schema.arity

    def test_consistent_with_base(self, flight_cube):
        assert flight_cube.consistent_with_base()


class TestAggregateContents:
    def test_apex_is_grand_total(self, flight_cube):
        apex = flight_cube.cuboids[0][()]
        assert apex.count == 14
        assert apex.sum_measure == pytest.approx(145.0)
        assert apex.avg == pytest.approx(10.357, abs=1e-3)

    def test_point_query_matches_thesis_rule(self, flights, flight_cube):
        london = flights.encoder("Destination").encode_existing("London")
        agg = flight_cube.point((WILDCARD, WILDCARD, london))
        assert agg.count == 4
        assert agg.avg == pytest.approx(15.25)

    def test_point_query_missing_group_returns_none(self, flights, flight_cube):
        # (Fri, *, *) exists but Fri->Beijing was never flown.
        fri = flights.encoder("Day").encode_existing("Fri")
        beijing = flights.encoder("Destination").encode_existing("Beijing")
        assert flight_cube.point((fri, WILDCARD, beijing)) is None

    def test_point_query_arity_checked(self, flight_cube):
        with pytest.raises(DataError):
            flight_cube.point((WILDCARD,))

    def test_base_cuboid_group_per_distinct_row(self, flights, flight_cube):
        base = flight_cube.cuboids[flight_cube.lattice.base_mask]
        distinct = {flights.encoded_row(i) for i in range(len(flights))}
        assert set(base) == distinct

    def test_slice_filters_groups(self, flights, flight_cube):
        mon = flights.encoder("Day").encode_existing("Mon")
        rows = flight_cube.slice(0b011, fixed={0: mon})
        assert sum(agg.count for _k, agg in rows) == 5

    def test_slice_rejects_aggregated_position(self, flight_cube):
        with pytest.raises(DataError):
            flight_cube.slice(0b001, fixed={2: 0})

    def test_roll_up_equals_direct_computation(self, flights, flight_cube):
        rolled = flight_cube.roll_up(0b111, 0b100)
        assert rolled == flight_cube.cuboids[0b100]


class TestWorkCounters:
    def test_naive_scans_once_per_cuboid(self, flights):
        stats = {}
        naive_cube(flights, stats=stats)
        assert stats["passes"] == 8
        assert stats["tuples_read"] == 8 * len(flights)

    def test_hash_cube_reads_fewer_tuples(self, flights):
        naive_stats, hash_stats = {}, {}
        naive_cube(flights, stats=naive_stats)
        hash_cube(flights, stats=hash_stats)
        assert hash_stats["tuples_read"] < naive_stats["tuples_read"]

    def test_sort_cube_uses_fewer_passes(self, flights):
        stats = {}
        sort_cube(flights, stats=stats)
        assert stats["sorts"] < 8

    def test_requested_masks_only(self, flights):
        cube = naive_cube(flights, masks=[0, 0b001])
        assert set(cube.cuboids) == {0, 0b001}

    def test_hash_cube_requested_masks(self, flights):
        cube = hash_cube(flights, masks=[0, 0b010])
        assert set(cube.cuboids) == {0, 0b010}
        full = naive_cube(flights)
        assert cube.cuboids[0b010] == full.cuboids[0b010]


class TestIceberg:
    def test_min_support_one_equals_full_cube(self, flights, flight_cube):
        assert buc_cube(flights, min_support=1) == flight_cube

    def test_iceberg_keeps_only_supported_groups(self, flights, flight_cube):
        iceberg = buc_cube(flights, min_support=4)
        for mask, groups in iceberg.cuboids.items():
            for key, agg in groups.items():
                assert agg.count >= 4
                assert flight_cube.cuboids[mask][key] == agg

    def test_iceberg_is_complete(self, flights, flight_cube):
        # Every qualifying group of the full cube must appear.
        iceberg = buc_cube(flights, min_support=3)
        for mask, groups in flight_cube.cuboids.items():
            for key, agg in groups.items():
                if agg.count >= 3:
                    assert iceberg.cuboids[mask][key] == agg

    def test_min_support_validation(self, flights):
        with pytest.raises(DataError):
            buc_cube(flights, min_support=0)

    def test_unreachable_support_leaves_apex_empty(self, flights):
        iceberg = buc_cube(flights, min_support=1000)
        assert iceberg.num_groups() == 0


# ----------------------------------------------------------------------
# Property-based agreement on random tables
# ----------------------------------------------------------------------

ROWS = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 2),
        st.integers(0, 2),
        st.floats(0, 50, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


def table_from(rows):
    schema = Schema(["a", "b", "c"], "m")
    return Table.from_rows(schema, rows)


@given(ROWS)
@settings(max_examples=40, deadline=None)
def test_all_algorithms_agree(rows):
    table = table_from(rows)
    reference = naive_cube(table)
    assert hash_cube(table) == reference
    assert sort_cube(table) == reference
    assert buc_cube(table) == reference


@given(ROWS)
@settings(max_examples=40, deadline=None)
def test_cube_is_consistent_with_base(rows):
    assert hash_cube(table_from(rows)).consistent_with_base()


@given(ROWS, st.integers(2, 5))
@settings(max_examples=40, deadline=None)
def test_iceberg_subset_property(rows, support):
    table = table_from(rows)
    full = naive_cube(table)
    iceberg = buc_cube(table, min_support=support)
    for mask, groups in iceberg.cuboids.items():
        for key, agg in groups.items():
            assert full.cuboids[mask][key] == agg
            assert agg.count >= support


@given(ROWS)
@settings(max_examples=40, deadline=None)
def test_every_level_sums_to_total(rows):
    """Each cuboid partitions the rows, so counts always total |D|."""
    table = table_from(rows)
    cube = naive_cube(table)
    for groups in cube.cuboids.values():
        assert sum(agg.count for agg in groups.values()) == len(table)
