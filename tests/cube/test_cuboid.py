"""Cuboid lattice structure tests."""

import pytest

from repro.common.errors import DataError
from repro.cube.cuboid import (
    CuboidLattice,
    mask_of,
    popcount,
    positions_of,
)


class TestMaskHelpers:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_mask_of_round_trips_positions(self):
        assert positions_of(mask_of([0, 2], arity=3)) == [0, 2]

    def test_mask_of_rejects_out_of_range(self):
        with pytest.raises(DataError):
            mask_of([3], arity=3)

    def test_positions_are_sorted(self):
        assert positions_of(0b110) == [1, 2]


class TestLattice:
    @pytest.fixture
    def lattice(self):
        return CuboidLattice(3)

    def test_size(self, lattice):
        assert len(lattice) == 8
        assert lattice.base_mask == 0b111

    def test_arity_bounds(self):
        with pytest.raises(DataError):
            CuboidLattice(0)
        with pytest.raises(DataError):
            CuboidLattice(21)

    def test_levels_partition_all_masks(self, lattice):
        levels = lattice.masks_by_level()
        assert [len(level) for level in levels] == [1, 3, 3, 1]
        assert sorted(m for level in levels for m in level) == list(range(8))

    def test_parents_add_one_attribute(self, lattice):
        assert sorted(lattice.parents(0b001)) == [0b011, 0b101]

    def test_base_has_no_parents(self, lattice):
        assert lattice.parents(0b111) == []

    def test_children_remove_one_attribute(self, lattice):
        assert sorted(lattice.children(0b011)) == [0b001, 0b010]

    def test_apex_has_no_children(self, lattice):
        assert lattice.children(0) == []

    def test_ancestor_is_subset_relation(self, lattice):
        assert lattice.is_ancestor(0b001, 0b011)
        assert lattice.is_ancestor(0, 0b111)
        assert not lattice.is_ancestor(0b100, 0b011)
        assert lattice.is_ancestor(0b011, 0b011)

    def test_project_key_keeps_subset_values(self, lattice):
        # Cuboid {0,1,2} key (a, b, c) projected to {0,2} keeps (a, c).
        assert lattice.project_key(("a", "b", "c"), 0b111, 0b101) == ("a", "c")

    def test_project_key_to_apex(self, lattice):
        assert lattice.project_key(("a",), 0b001, 0) == ()

    def test_project_key_rejects_non_ancestor(self, lattice):
        with pytest.raises(DataError):
            lattice.project_key(("a",), 0b001, 0b010)

    def test_parent_child_duality(self, lattice):
        for mask in lattice.all_masks():
            for parent in lattice.parents(mask):
                assert mask in lattice.children(parent)
