"""Parallel stage execution: bit-compatibility, determinism, speedup.

The engine's ``parallelism`` knob changes only *wall-clock* behaviour:
outputs, counters, cache hit/miss sequences and simulated seconds must
be identical to a serial run.  These tests pin that contract at the
stage level, through a full mining run, and through the service.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.common.errors import EngineError
from repro.core.config import variant_config
from repro.core.miner import Sirum, make_default_cluster
from repro.data.generators import SyntheticSpec, generate
from repro.engine.cluster import ClusterContext, default_parallelism
from repro.engine.cost import ClusterSpec, CostModel


def make_cluster(parallelism=1, **kwargs):
    spec = ClusterSpec(
        num_executors=kwargs.pop("num_executors", 2),
        cores_per_executor=kwargs.pop("cores_per_executor", 2),
        executor_memory_bytes=kwargs.pop("executor_memory_bytes", 1 << 20),
        storage_fraction=kwargs.pop("storage_fraction", 0.6),
        straggler_sigma=0.0,
    )
    cost = CostModel(
        op_seconds=1e-6,
        record_seconds=1e-4,
        task_launch_seconds=0.0,
        stage_overhead_seconds=0.0,
        shuffle_byte_seconds=1e-6,
        broadcast_byte_seconds=1e-6,
        disk_byte_seconds=1e-6,
    )
    return ClusterContext(spec, cost, parallelism=parallelism)


def synthetic_table(num_rows=2500, seed=11):
    spec = SyntheticSpec(
        num_rows=num_rows,
        cardinalities=[6, 5, 4, 3],
        skew=0.3,
        num_planted_rules=3,
        planted_arity=2,
        effect_scale=20.0,
        noise_scale=1.0,
        base_measure=50.0,
    )
    table, _ = generate(spec, seed=seed)
    return table


class TestParallelismKnob:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
        assert default_parallelism() == 1
        assert make_cluster(parallelism=None).parallelism == 1

    def test_env_variable_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "4")
        assert default_parallelism() == 4
        assert make_cluster(parallelism=None).parallelism == 4
        # An explicit argument still wins over the environment.
        assert make_cluster(parallelism=2).parallelism == 2

    def test_env_variable_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "zero")
        with pytest.raises(EngineError):
            default_parallelism()
        monkeypatch.setenv("REPRO_PARALLELISM", "0")
        with pytest.raises(EngineError):
            default_parallelism()

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(EngineError):
            make_cluster(parallelism=0)

    def test_close_is_idempotent(self):
        cluster = make_cluster(parallelism=3)
        cluster.run_stage(lambda tc, p: p, range(6))
        cluster.close()
        cluster.close()

    def test_context_manager_closes_pool(self):
        with make_cluster(parallelism=3) as cluster:
            result = cluster.run_stage(lambda tc, p: p * 2, range(6))
        assert result.outputs == [0, 2, 4, 6, 8, 10]
        assert cluster._pool is None


class TestParallelStage:
    def test_outputs_preserve_partition_order(self):
        cluster = make_cluster(parallelism=4)

        def kernel(tc, part):
            time.sleep(0.001 * (7 - part))  # later partitions finish first
            return part * 10

        result = cluster.run_stage(kernel, range(8))
        assert result.outputs == [p * 10 for p in range(8)]

    def test_kernels_actually_run_concurrently(self):
        cluster = make_cluster(parallelism=4)
        barrier = threading.Barrier(4, timeout=10.0)

        def kernel(tc, part):
            # Deadlocks unless 4 kernels are in flight simultaneously.
            barrier.wait()
            return part

        result = cluster.run_stage(kernel, range(4))
        assert result.outputs == [0, 1, 2, 3]

    def test_kernel_exception_propagates(self):
        cluster = make_cluster(parallelism=4)

        def kernel(tc, part):
            if part == 2:
                raise ValueError("boom in partition 2")
            return part

        with pytest.raises(ValueError, match="boom in partition 2"):
            cluster.run_stage(kernel, range(4))

    def test_metrics_identical_to_serial(self):
        def workload(cluster):
            def kernel(tc, part):
                tc.add_records(50 * (part + 1))
                tc.add_ops(10 * part)
                tc.add_output_bytes(100)
                return part

            cluster.run_stage(kernel, range(8), shuffle_output=True)
            cluster.run_stage(kernel, range(8))
            return cluster.metrics.snapshot()

        assert workload(make_cluster(parallelism=1)) == workload(
            make_cluster(parallelism=4)
        )

    def test_cache_sequence_identical_to_serial(self):
        # A storage pool that only fits some partitions: the hit/miss
        # and eviction sequence is LRU-order-sensitive, so it only
        # matches serial if parallel mode replays accesses in
        # partition order.
        def workload(cluster):
            def kernel(tc, part):
                cluster.cached_access(tc, ("data", part), 200_000)
                tc.add_records(10)
                return part

            for _ in range(3):
                cluster.run_stage(kernel, range(12))
            return (
                cluster.metrics.snapshot(),
                cluster.cache.hits,
                cluster.cache.misses,
                cluster.cache.evictions,
            )

        serial = workload(make_cluster(parallelism=1,
                                       executor_memory_bytes=1 << 20))
        parallel = workload(make_cluster(parallelism=4,
                                         executor_memory_bytes=1 << 20))
        assert serial == parallel
        # The tiny pool must actually have evicted for this to bite.
        assert serial[3] > 0

    def test_deferred_charges_land_on_the_right_task(self):
        cluster = make_cluster(parallelism=4)

        def kernel(tc, part):
            cluster.cached_access(tc, ("p", part), 100 * (part + 1))
            return part

        result = cluster.run_stage(kernel, range(4))
        assert [tc.disk_bytes for tc in result.tasks] == [100, 200, 300, 400]


class TestMiningBitIdentity:
    @pytest.mark.parametrize("variant", ["optimized", "baseline", "rct"])
    def test_mining_identical_across_modes(self, variant):
        table = synthetic_table()
        results = {}
        for parallelism in (1, 4):
            cluster = make_default_cluster(
                num_executors=4, cores_per_executor=4,
                parallelism=parallelism,
            )
            config = variant_config(variant, k=4, sample_size=24, seed=3)
            results[parallelism] = Sirum(config).mine(table, cluster=cluster)
            cluster.close()
        serial, parallel = results[1], results[4]
        assert [tuple(m.rule.values) for m in serial.rule_set] == [
            tuple(m.rule.values) for m in parallel.rule_set
        ]
        assert np.array_equal(serial.lambdas, parallel.lambdas)
        assert np.array_equal(serial.estimates, parallel.estimates)
        assert serial.kl_trace == parallel.kl_trace
        # Simulated seconds, per-phase attribution and every counter —
        # the cost model must not notice the execution mode.
        assert serial.metrics == parallel.metrics

    def test_service_results_identical_across_modes(self):
        from repro.service import RuleMiningService, ServiceConfig

        table = synthetic_table(num_rows=800)
        outcomes = {}
        for parallelism in (1, 4):
            with RuleMiningService(ServiceConfig(
                num_workers=2, engine_parallelism=parallelism,
            )) as service:
                service.register_dataset("syn", table)
                result = service.mine("syn", k=3, sample_size=16, seed=0,
                                      timeout=60.0)
                outcomes[parallelism] = result
        serial, parallel = outcomes[1], outcomes[4]
        assert [tuple(m.rule.values) for m in serial.rule_set] == [
            tuple(m.rule.values) for m in parallel.rule_set
        ]
        assert serial.metrics == parallel.metrics


@pytest.mark.slow
class TestParallelSpeedup:
    def test_speedup_at_parallelism_4(self):
        """The acceptance floor: >=2x wall-clock at 4 workers.

        Thread-level speedup needs real cores; on starved CI hosts the
        floor is physically unreachable, so the assertion requires at
        least 4 usable cores (the benchmark script reports measured
        numbers regardless of host width).
        """
        cores = len(os.sched_getaffinity(0))
        if cores < 4:
            pytest.skip(
                "parallel speedup floor needs >=4 cores; host has %d"
                % cores
            )
        table = synthetic_table(num_rows=60_000, seed=7)
        walls = {}
        for parallelism in (1, 4):
            cluster = make_default_cluster(
                num_executors=4, cores_per_executor=4,
                parallelism=parallelism,
            )
            config = variant_config("optimized", k=5, sample_size=48,
                                    seed=0, num_partitions=16)
            started = time.perf_counter()
            Sirum(config).mine(table, cluster=cluster)
            walls[parallelism] = time.perf_counter() - started
            cluster.close()
        assert walls[1] / walls[4] >= 2.0
