"""Parallel stage execution: bit-compatibility, determinism, speedup.

The engine's ``parallelism`` and ``executor`` knobs change only
*wall-clock* behaviour: outputs, counters, cache hit/miss sequences
and simulated seconds must be identical to a serial run, and kernel
failures must abort a stage identically in serial, thread and process
modes.  These tests pin that contract at the stage level, through a
full mining run, and through the service — plus the pool-lifecycle
guarantee that no worker threads or processes outlive a job.
"""

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro.common.errors import EngineError
from repro.core.config import variant_config
from repro.core.miner import Sirum, make_default_cluster, mine
from repro.data.generators import SyntheticSpec, generate
from repro.engine.cluster import (
    ClusterContext,
    default_executor,
    default_parallelism,
)
from repro.engine.cost import ClusterSpec, CostModel


def make_cluster(parallelism=1, executor=None, **kwargs):
    spec = ClusterSpec(
        num_executors=kwargs.pop("num_executors", 2),
        cores_per_executor=kwargs.pop("cores_per_executor", 2),
        executor_memory_bytes=kwargs.pop("executor_memory_bytes", 1 << 20),
        storage_fraction=kwargs.pop("storage_fraction", 0.6),
        straggler_sigma=0.0,
    )
    cost = CostModel(
        op_seconds=1e-6,
        record_seconds=1e-4,
        task_launch_seconds=0.0,
        stage_overhead_seconds=0.0,
        shuffle_byte_seconds=1e-6,
        broadcast_byte_seconds=1e-6,
        disk_byte_seconds=1e-6,
    )
    return ClusterContext(spec, cost, parallelism=parallelism,
                          executor=executor)


def _stage_threads():
    return [t for t in threading.enumerate()
            if t.name.startswith("repro-stage") and t.is_alive()]


def _child_pids():
    return {p.pid for p in multiprocessing.active_children()}


def _double_kernel(tc, part):
    """Module-level (picklable) kernel for process-mode stage tests."""
    tc.add_records(1)
    return part * 2


def _lambda_factory_kernel(tc, part):
    """Picklable kernel whose *output* is not picklable."""
    tc.add_records(1)
    return lambda part=part: part


def _boom_kernel(tc, part):
    """Module-level kernel failing on partition 2 in every mode."""
    if part == 2:
        raise ValueError("boom in partition 2")
    tc.add_records(10)
    return part


def synthetic_table(num_rows=2500, seed=11):
    spec = SyntheticSpec(
        num_rows=num_rows,
        cardinalities=[6, 5, 4, 3],
        skew=0.3,
        num_planted_rules=3,
        planted_arity=2,
        effect_scale=20.0,
        noise_scale=1.0,
        base_measure=50.0,
    )
    table, _ = generate(spec, seed=seed)
    return table


class TestParallelismKnob:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
        assert default_parallelism() == 1
        assert make_cluster(parallelism=None).parallelism == 1

    def test_env_variable_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "4")
        assert default_parallelism() == 4
        assert make_cluster(parallelism=None).parallelism == 4
        # An explicit argument still wins over the environment.
        assert make_cluster(parallelism=2).parallelism == 2

    def test_env_variable_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "zero")
        with pytest.raises(EngineError):
            default_parallelism()
        monkeypatch.setenv("REPRO_PARALLELISM", "0")
        with pytest.raises(EngineError):
            default_parallelism()

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(EngineError):
            make_cluster(parallelism=0)

    def test_close_is_idempotent(self):
        cluster = make_cluster(parallelism=3)
        cluster.run_stage(lambda tc, p: p, range(6))
        cluster.close()
        cluster.close()

    def test_context_manager_closes_pool(self):
        with make_cluster(parallelism=3) as cluster:
            result = cluster.run_stage(lambda tc, p: p * 2, range(6))
        assert result.outputs == [0, 2, 4, 6, 8, 10]
        assert cluster._pool is None


class TestParallelStage:
    def test_outputs_preserve_partition_order(self):
        cluster = make_cluster(parallelism=4)

        def kernel(tc, part):
            time.sleep(0.001 * (7 - part))  # later partitions finish first
            return part * 10

        result = cluster.run_stage(kernel, range(8))
        assert result.outputs == [p * 10 for p in range(8)]

    def test_kernels_actually_run_concurrently(self):
        cluster = make_cluster(parallelism=4)
        barrier = threading.Barrier(4, timeout=10.0)

        def kernel(tc, part):
            # Deadlocks unless 4 kernels are in flight simultaneously.
            barrier.wait()
            return part

        result = cluster.run_stage(kernel, range(4))
        assert result.outputs == [0, 1, 2, 3]

    def test_kernel_exception_propagates(self):
        cluster = make_cluster(parallelism=4)

        def kernel(tc, part):
            if part == 2:
                raise ValueError("boom in partition 2")
            return part

        with pytest.raises(ValueError, match="boom in partition 2"):
            cluster.run_stage(kernel, range(4))

    def test_metrics_identical_to_serial(self):
        def workload(cluster):
            def kernel(tc, part):
                tc.add_records(50 * (part + 1))
                tc.add_ops(10 * part)
                tc.add_output_bytes(100)
                return part

            cluster.run_stage(kernel, range(8), shuffle_output=True)
            cluster.run_stage(kernel, range(8))
            return cluster.metrics.snapshot()

        assert workload(make_cluster(parallelism=1)) == workload(
            make_cluster(parallelism=4)
        )

    def test_cache_sequence_identical_to_serial(self):
        # A storage pool that only fits some partitions: the hit/miss
        # and eviction sequence is LRU-order-sensitive, so it only
        # matches serial if parallel mode replays accesses in
        # partition order.
        def workload(cluster):
            def kernel(tc, part):
                cluster.cached_access(tc, ("data", part), 200_000)
                tc.add_records(10)
                return part

            for _ in range(3):
                cluster.run_stage(kernel, range(12))
            return (
                cluster.metrics.snapshot(),
                cluster.cache.hits,
                cluster.cache.misses,
                cluster.cache.evictions,
            )

        serial = workload(make_cluster(parallelism=1,
                                       executor_memory_bytes=1 << 20))
        parallel = workload(make_cluster(parallelism=4,
                                         executor_memory_bytes=1 << 20))
        assert serial == parallel
        # The tiny pool must actually have evicted for this to bite.
        assert serial[3] > 0

    def test_deferred_charges_land_on_the_right_task(self):
        cluster = make_cluster(parallelism=4)

        def kernel(tc, part):
            cluster.cached_access(tc, ("p", part), 100 * (part + 1))
            return part

        result = cluster.run_stage(kernel, range(4))
        assert [tc.disk_bytes for tc in result.tasks] == [100, 200, 300, 400]


class TestExecutorKnob:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert default_executor() == "thread"
        assert make_cluster(executor=None).executor == "thread"

    def test_env_variable_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert default_executor() == "process"
        assert make_cluster(executor=None).executor == "process"
        # An explicit argument still wins over the environment.
        assert make_cluster(executor="thread").executor == "thread"

    def test_env_variable_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "fibers")
        with pytest.raises(EngineError):
            default_executor()

    def test_invalid_executor_rejected(self):
        with pytest.raises(EngineError):
            make_cluster(executor="fibers")

    def test_uses_processes_requires_parallelism(self):
        assert make_cluster(parallelism=4,
                            executor="process").uses_processes
        assert not make_cluster(parallelism=1,
                                executor="process").uses_processes
        assert not make_cluster(parallelism=4,
                                executor="thread").uses_processes


class TestProcessStage:
    def test_outputs_preserve_partition_order(self):
        with make_cluster(parallelism=4, executor="process") as cluster:
            result = cluster.run_stage(_double_kernel, range(8))
        assert result.outputs == [p * 2 for p in range(8)]

    def test_charges_travel_back_from_workers(self):
        with make_cluster(parallelism=4, executor="process") as cluster:
            result = cluster.run_stage(_double_kernel, range(8))
            assert [tc.records for tc in result.tasks] == [1] * 8
            assert cluster.metrics.counter("tasks") == 8

    def test_metrics_identical_to_serial_and_thread(self):
        def workload(cluster):
            with cluster:
                def run():
                    cluster.run_stage(_double_kernel, range(8),
                                      shuffle_output=True)
                    cluster.run_stage(_double_kernel, range(8))

                run()
                return cluster.metrics.snapshot()

        serial = workload(make_cluster(parallelism=1))
        thread = workload(make_cluster(parallelism=4, executor="thread"))
        process = workload(make_cluster(parallelism=4, executor="process"))
        assert serial == thread == process

    def test_unpicklable_kernel_falls_back_to_threads(self):
        captured = []

        def kernel(tc, part):  # a closure: cannot cross process pickling
            captured.append(part)
            tc.add_records(1)
            return part * 3

        with make_cluster(parallelism=4, executor="process") as cluster:
            result = cluster.run_stage(kernel, range(6))
            assert result.outputs == [0, 3, 6, 9, 12, 15]
            assert cluster.fallback_stages == 1
            # The closure really ran in this process (thread pool).
            assert sorted(captured) == [0, 1, 2, 3, 4, 5]

    def test_unpicklable_partition_data_falls_back_to_threads(self):
        # The kernel pickles but the partition elements do not (the
        # RDD/lazy layers accept arbitrary user data): the stage must
        # still succeed, exactly as in serial/thread modes.
        from repro.engine.rdd import RDD

        with make_cluster(parallelism=4, executor="process") as cluster:
            rdd = RDD(cluster, [[lambda: 1, lambda: 2], [lambda: 3]])
            assert rdd.count() == 3
            assert cluster.fallback_stages >= 1

    def test_unpicklable_task_output_falls_back_to_threads(self):
        with make_cluster(parallelism=4, executor="process") as cluster:
            result = cluster.run_stage(_lambda_factory_kernel, range(4))
            assert [fn() for fn in result.outputs] == [0, 1, 2, 3]
            assert cluster.fallback_stages == 1
            assert cluster.metrics.counter("tasks") == 4

    def test_close_is_idempotent_across_executor_kinds(self):
        cluster = make_cluster(parallelism=3, executor="process")
        cluster.run_stage(_double_kernel, range(6))
        cluster.run_stage(lambda tc, p: p, range(6))  # thread fallback
        cluster.close()
        cluster.close()
        assert cluster._pool is None
        assert cluster._process_pool is None


class TestFailureSemantics:
    """A kernel exception aborts the stage identically in every mode."""

    @pytest.mark.parametrize("parallelism,executor", [
        (1, "thread"), (4, "thread"), (4, "process"),
    ])
    def test_exception_propagates_and_state_untouched(self, parallelism,
                                                      executor):
        with make_cluster(parallelism=parallelism,
                          executor=executor) as cluster:
            # Seed some cache/metrics state, then snapshot it.
            def seed_kernel(tc, part):
                cluster.cached_access(tc, ("seed", part), 1000)
                tc.add_records(5)
                return part

            cluster.run_stage(seed_kernel, range(4))
            metrics_before = cluster.metrics.snapshot()
            cache_before = (cluster.cache.hits, cluster.cache.misses,
                            cluster.cache.evictions,
                            cluster.cache.cached_bytes)

            def failing_stage(tc, part):
                cluster.cached_access(tc, ("fail", part), 1000)
                return _boom_kernel(tc, part)

            boom = _boom_kernel if executor == "process" else failing_stage
            with pytest.raises(ValueError, match="boom in partition 2"):
                cluster.run_stage(boom, range(6))
            # The aborted stage charged nothing and touched no cache.
            assert cluster.metrics.snapshot() == metrics_before
            assert (cluster.cache.hits, cluster.cache.misses,
                    cluster.cache.evictions,
                    cluster.cache.cached_bytes) == cache_before
            # The cluster stays usable for the next stage.
            result = cluster.run_stage(seed_kernel, range(4))
            assert result.outputs == [0, 1, 2, 3]

    def test_exception_message_parity_across_modes(self):
        seen = {}
        for parallelism, executor in [(1, "thread"), (4, "thread"),
                                      (4, "process")]:
            with make_cluster(parallelism=parallelism,
                              executor=executor) as cluster:
                with pytest.raises(ValueError) as excinfo:
                    cluster.run_stage(_boom_kernel, range(6))
                seen[(parallelism, executor)] = (
                    type(excinfo.value).__name__, str(excinfo.value)
                )
        assert len(set(seen.values())) == 1

    def test_lowest_failing_partition_wins_in_parallel(self):
        # Partitions 1 and 3 both fail; serial surfaces partition 1
        # (it runs first), and parallel modes must match even when
        # partition 3's task finishes failing earlier in wall time.
        def kernel(tc, part):
            if part == 1:
                time.sleep(0.02)
                raise ValueError("boom in partition 1")
            if part == 3:
                raise ValueError("boom in partition 3")
            return part

        for parallelism in (1, 4):
            with make_cluster(parallelism=parallelism) as cluster:
                with pytest.raises(ValueError,
                                   match="boom in partition 1"):
                    cluster.run_stage(kernel, range(6))


class TestPoolLifecycle:
    """No executor threads/processes survive a completed job."""

    def test_mine_closes_internal_thread_pool(self):
        table = synthetic_table(num_rows=600)
        before = set(id(t) for t in _stage_threads())
        mine(table, k=2, sample_size=16, seed=0, parallelism=4)
        after = set(id(t) for t in _stage_threads())
        assert after <= before

    def test_mine_closes_internal_process_pool(self):
        table = synthetic_table(num_rows=600)
        before = _child_pids()
        mine(table, k=2, sample_size=16, seed=0, parallelism=2,
             executor="process")
        assert _child_pids() <= before

    def test_explore_cube_closes_internal_cluster(self):
        from repro.apps import explore_cube

        table = synthetic_table(num_rows=400)
        before = set(id(t) for t in _stage_threads())
        explore_cube(table, k=2, parallelism=4)
        assert set(id(t) for t in _stage_threads()) <= before

    def test_service_job_closes_engine_cluster(self):
        from repro.service import RuleMiningService, ServiceConfig

        table = synthetic_table(num_rows=600)
        before = set(id(t) for t in _stage_threads())
        with RuleMiningService(ServiceConfig(
            num_workers=2, engine_parallelism=4,
        )) as service:
            service.register_dataset("syn", table)
            service.mine("syn", k=2, sample_size=16, seed=0, timeout=60.0)
            # The job's cluster pool dies with the job, not the service.
            assert set(id(t) for t in _stage_threads()) <= before
        assert set(id(t) for t in _stage_threads()) <= before

    def test_streaming_context_manager_closes_cluster(self, monkeypatch):
        from repro.streaming import IncrementalSirum

        monkeypatch.setenv("REPRO_PARALLELISM", "4")
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        table = synthetic_table(num_rows=900)
        batches = [table.slice(i * 300, (i + 1) * 300) for i in range(3)]
        before = set(id(t) for t in _stage_threads())
        config = variant_config("optimized", k=2, sample_size=16, seed=0)
        with IncrementalSirum(config) as miner:
            for batch in batches:
                miner.process(batch)
        assert set(id(t) for t in _stage_threads()) <= before

    def test_streaming_leaves_caller_supplied_cluster_open(self):
        from repro.streaming import IncrementalSirum

        cluster = make_default_cluster(parallelism=4)
        config = variant_config("optimized", k=2, sample_size=16, seed=0)
        with IncrementalSirum(config, cluster=cluster) as miner:
            miner.process(synthetic_table(num_rows=300))
        # The caller owns this cluster: its pool (whichever executor
        # kind the environment selected) must survive the exit.
        assert (cluster._pool is not None
                or cluster._process_pool is not None)
        cluster.close()

    def test_streaming_close_is_idempotent(self):
        from repro.streaming import IncrementalSirum

        miner = IncrementalSirum(
            variant_config("optimized", k=2, sample_size=16, seed=0)
        )
        miner.process(synthetic_table(num_rows=300))
        miner.close()
        miner.close()


class TestMiningBitIdentity:
    @pytest.mark.parametrize("variant", ["optimized", "baseline", "rct"])
    def test_mining_identical_across_modes(self, variant):
        table = synthetic_table()
        results = {}
        for parallelism in (1, 4):
            cluster = make_default_cluster(
                num_executors=4, cores_per_executor=4,
                parallelism=parallelism,
            )
            config = variant_config(variant, k=4, sample_size=24, seed=3)
            results[parallelism] = Sirum(config).mine(table, cluster=cluster)
            cluster.close()
        serial, parallel = results[1], results[4]
        assert [tuple(m.rule.values) for m in serial.rule_set] == [
            tuple(m.rule.values) for m in parallel.rule_set
        ]
        assert np.array_equal(serial.lambdas, parallel.lambdas)
        assert np.array_equal(serial.estimates, parallel.estimates)
        assert serial.kl_trace == parallel.kl_trace
        # Simulated seconds, per-phase attribution and every counter —
        # the cost model must not notice the execution mode.
        assert serial.metrics == parallel.metrics

    @pytest.mark.parametrize("variant", ["optimized", "baseline"])
    def test_process_mode_identical_to_serial(self, variant):
        table = synthetic_table()
        results = {}
        for executor, parallelism in (("thread", 1), ("process", 4)):
            cluster = make_default_cluster(
                num_executors=4, cores_per_executor=4,
                parallelism=parallelism, executor=executor,
            )
            config = variant_config(variant, k=4, sample_size=24, seed=3)
            results[executor] = Sirum(config).mine(table, cluster=cluster)
            cluster.close()
        serial, process = results["thread"], results["process"]
        assert [tuple(m.rule.values) for m in serial.rule_set] == [
            tuple(m.rule.values) for m in process.rule_set
        ]
        assert np.array_equal(serial.lambdas, process.lambdas)
        assert np.array_equal(serial.estimates, process.estimates)
        assert serial.kl_trace == process.kl_trace
        # Simulated seconds, per-phase attribution and every counter —
        # the cost model must not notice worker processes either.
        assert serial.metrics == process.metrics

    def test_dict_path_identical_across_executors(self):
        # Domains too wide for the 63-bit packed codec: candidate
        # generation takes the pure-Python dict path, the kernels the
        # process mode exists for.
        spec = SyntheticSpec(
            num_rows=1500,
            cardinalities=[500] * 8,
            skew=0.6,
            num_planted_rules=3,
            planted_arity=2,
            effect_scale=20.0,
            noise_scale=1.0,
            base_measure=50.0,
        )
        table, _ = generate(spec, seed=5)
        from repro.core.codec import RowCodec

        assert not RowCodec.from_table(table).fits
        results = {}
        for executor, parallelism in (
            ("thread", 1), ("thread", 4), ("process", 4),
        ):
            result = mine(
                table, k=2, variant="fastpruning", sample_size=16,
                seed=1, parallelism=parallelism, executor=executor,
            )
            results[(executor, parallelism)] = (
                [tuple(m.rule.values) for m in result.rule_set],
                list(result.lambdas),
                result.kl_trace,
                result.metrics,
            )
        assert (results[("thread", 1)] == results[("thread", 4)]
                == results[("process", 4)])

    def test_mining_identical_across_placement_modes(self):
        """Serial, placed threads, placed processes and placed remote
        workers — one result, bit for bit.

        Placed runs use as many workers as the job has partitions, so
        every stage takes the placed path (pool i is pinned to shard
        i); the remote run ships shards to two loopback workers.
        """
        from repro.bench.harness import mining_results_identical
        from repro.net.worker import ShardWorker

        table = synthetic_table()

        def run(**cluster_kwargs):
            cluster = make_default_cluster(
                num_executors=2, cores_per_executor=2, **cluster_kwargs
            )
            try:
                config = variant_config("optimized", k=4, sample_size=24,
                                        seed=3)
                result = Sirum(config).mine(table, cluster=cluster)
                return result, cluster.placement_stats()
            finally:
                cluster.close()

        serial, _ = run(parallelism=1)
        thread_placed, thread_stats = run(parallelism=4, executor="thread",
                                          placed=True)
        process_placed, process_stats = run(parallelism=4,
                                            executor="process", placed=True)
        with ShardWorker() as w1, ShardWorker() as w2:
            remote_placed, remote_stats = run(
                executor="remote", workers=[w1.address, w2.address],
            )
            assert w1.stats()["stages"] > 0
            assert w2.stats()["stages"] > 0
        assert mining_results_identical(serial, thread_placed)
        assert mining_results_identical(serial, process_placed)
        assert mining_results_identical(serial, remote_placed)
        # The placed runs really pinned shards: every stage placed,
        # and repeat visits to a pinned worker counted as hits.
        for stats in (thread_stats, process_stats, remote_stats):
            assert stats["placed_stages"] > 0
            assert stats["unplaced_stages"] == 0
            assert stats["affinity_hits"] > 0
            assert stats["rebalances"] == 0

    def test_placed_degrades_to_unplaced_when_workers_are_short(self):
        # 2 workers cannot own 4 shards each: the stage must run on
        # the shared (unplaced) pool and the tracker must say so.
        with make_cluster(parallelism=2) as cluster:
            cluster.placed = True
            result = cluster.run_stage(lambda tc, p: p * 2, range(4))
            assert result.outputs == [0, 2, 4, 6]
            stats = cluster.placement_stats()
            assert stats["placed_stages"] == 0
            assert stats["unplaced_stages"] == 1

    @pytest.mark.parametrize("engine_executor", ["thread", "process"])
    def test_service_results_identical_across_modes(self, engine_executor):
        from repro.service import RuleMiningService, ServiceConfig

        table = synthetic_table(num_rows=800)
        outcomes = {}
        for parallelism in (1, 4):
            with RuleMiningService(ServiceConfig(
                num_workers=2, engine_parallelism=parallelism,
                engine_executor=engine_executor,
            )) as service:
                service.register_dataset("syn", table)
                result = service.mine("syn", k=3, sample_size=16, seed=0,
                                      timeout=60.0)
                outcomes[parallelism] = result
        serial, parallel = outcomes[1], outcomes[4]
        assert [tuple(m.rule.values) for m in serial.rule_set] == [
            tuple(m.rule.values) for m in parallel.rule_set
        ]
        assert serial.metrics == parallel.metrics


class TestFileBackedBitIdentity:
    """Out-of-core axis of the identity matrix.

    Mining a file-backed table — with a buffer pool deliberately
    smaller than the decoded table, so blocks evict and re-fault — must
    produce the same rules, lambdas, estimates, KL trace and simulated
    metrics as mining the in-RAM table, in every execution mode.
    """

    @pytest.mark.parametrize("parallelism,executor", [
        (1, "thread"), (4, "thread"), (4, "process"),
    ])
    def test_file_backed_identical_to_in_ram(self, parallelism, executor,
                                             tmp_path):
        from repro.data.colfile import write_colfile
        from repro.data.table import Table

        table = synthetic_table()
        path = tmp_path / "syn.col"
        write_colfile(table, path, block_rows=256)
        file_table = Table.open_colfile(
            path, capacity_bytes=table.estimated_bytes() // 2
        )

        def run(t):
            cluster = make_default_cluster(
                num_executors=4, cores_per_executor=4,
                parallelism=parallelism, executor=executor,
            )
            try:
                config = variant_config("optimized", k=4, sample_size=24,
                                        seed=3)
                return Sirum(config).mine(t, cluster=cluster)
            finally:
                cluster.close()

        in_ram = run(table)
        out_of_core = run(file_table)
        assert [tuple(m.rule.values) for m in in_ram.rule_set] == [
            tuple(m.rule.values) for m in out_of_core.rule_set
        ]
        assert np.array_equal(in_ram.lambdas, out_of_core.lambdas)
        assert np.array_equal(in_ram.estimates, out_of_core.estimates)
        assert in_ram.kl_trace == out_of_core.kl_trace
        # The memory/cost simulation must not notice the storage mode.
        assert in_ram.metrics == out_of_core.metrics
        # The undersized pool really streamed: faults and evictions.
        pool = file_table.buffer_pool
        assert pool.misses > 0
        assert pool.evictions > 0
        assert pool.resident_bytes <= pool.capacity_bytes
        if executor == "process" and parallelism > 1:
            # Process workers attached the mmap'd file; no shm copy of
            # the table was made for the job.
            assert file_table._shm_pack is None

    def test_file_backed_service_job_exposes_pool_stats(self):
        import tempfile

        from repro.data.colfile import write_colfile
        from repro.data.table import Table
        from repro.service import RuleMiningService, ServiceConfig

        table = synthetic_table(num_rows=800)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "syn.col")
            write_colfile(table, path, block_rows=128)
            file_table = Table.open_colfile(
                path, capacity_bytes=table.estimated_bytes() // 2
            )
            with RuleMiningService(ServiceConfig(
                num_workers=2, engine_parallelism=2,
            )) as service:
                service.register_dataset("ram", table)
                service.register_dataset("disk", file_table)
                expected = service.mine("ram", k=3, sample_size=16, seed=0,
                                        timeout=60.0)
                result = service.mine("disk", k=3, sample_size=16, seed=0,
                                      timeout=60.0)
                stats = service.stats()
            assert [tuple(m.rule.values) for m in result.rule_set] == [
                tuple(m.rule.values) for m in expected.rule_set
            ]
            assert result.metrics == expected.metrics
            pool_stats = stats["buffer_pool"]
            assert pool_stats["attached"]
            assert list(pool_stats["datasets"]) == ["disk"]
            disk = pool_stats["datasets"]["disk"]
            assert disk["misses"] > 0
            assert 0.0 <= disk["hit_rate"] <= 1.0
            assert disk["resident_bytes"] <= disk["capacity_bytes"]


@pytest.mark.slow
class TestParallelSpeedup:
    def test_speedup_at_parallelism_4(self):
        """The acceptance floor: >=2x wall-clock at 4 workers.

        Thread-level speedup needs real cores; on starved CI hosts the
        floor is physically unreachable, so the assertion requires at
        least 4 usable cores (the benchmark script reports measured
        numbers regardless of host width).
        """
        cores = len(os.sched_getaffinity(0))
        if cores < 4:
            pytest.skip(
                "parallel speedup floor needs >=4 cores; host has %d"
                % cores
            )
        table = synthetic_table(num_rows=60_000, seed=7)
        walls = {}
        for parallelism in (1, 4):
            cluster = make_default_cluster(
                num_executors=4, cores_per_executor=4,
                parallelism=parallelism,
            )
            config = variant_config("optimized", k=5, sample_size=48,
                                    seed=0, num_partitions=16)
            started = time.perf_counter()
            Sirum(config).mine(table, cluster=cluster)
            walls[parallelism] = time.perf_counter() - started
            cluster.close()
        assert walls[1] / walls[4] >= 2.0
