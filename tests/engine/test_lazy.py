"""Lazy RDD lineage, pipelining and fault recovery."""

import pytest

from repro.common.errors import EngineError
from repro.core.miner import make_default_cluster
from repro.engine.lazy import DAGScheduler, LazyRDD
from repro.engine.rdd import RDD


@pytest.fixture
def ctx():
    return make_default_cluster(num_executors=2, cores_per_executor=2)


def parallelize(ctx, data, num_partitions=4):
    return LazyRDD.parallelize(ctx, data, num_partitions)


class TestLaziness:
    def test_transformations_do_not_execute(self, ctx):
        rdd = parallelize(ctx, range(100))
        before = ctx.metrics.counter("stages")
        rdd.map(lambda x: x + 1).filter(lambda x: x % 2 == 0)
        assert ctx.metrics.counter("stages") == before

    def test_action_triggers_execution(self, ctx):
        rdd = parallelize(ctx, range(100)).map(lambda x: x + 1)
        before = ctx.metrics.counter("stages")
        rdd.collect()
        assert ctx.metrics.counter("stages") > before

    def test_collect_preserves_order(self, ctx):
        assert parallelize(ctx, range(20)).collect() == list(range(20))

    def test_count(self, ctx):
        assert parallelize(ctx, range(33)).filter(lambda x: x < 10).count() == 10

    def test_reduce(self, ctx):
        assert parallelize(ctx, range(10)).reduce(lambda a, b: a + b) == 45

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            parallelize(ctx, []).reduce(lambda a, b: a + b)

    def test_take(self, ctx):
        assert parallelize(ctx, range(100)).take(3) == [0, 1, 2]


class TestTransformations:
    def test_map(self, ctx):
        out = parallelize(ctx, range(5)).map(lambda x: x * x).collect()
        assert out == [0, 1, 4, 9, 16]

    def test_flat_map(self, ctx):
        out = parallelize(ctx, [1, 2]).flat_map(lambda x: [x] * x).collect()
        assert out == [1, 2, 2]

    def test_filter(self, ctx):
        out = parallelize(ctx, range(10)).filter(lambda x: x > 7).collect()
        assert out == [8, 9]

    def test_chained_narrow_ops(self, ctx):
        out = (
            parallelize(ctx, range(10))
            .map(lambda x: x + 1)
            .filter(lambda x: x % 2 == 0)
            .map(lambda x: x * 10)
            .collect()
        )
        assert out == [20, 40, 60, 80, 100]

    def test_reduce_by_key(self, ctx):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4)]
        out = dict(
            parallelize(ctx, pairs).reduce_by_key(lambda a, b: a + b).collect()
        )
        assert out == {"a": 4, "b": 6}

    def test_group_by_key(self, ctx):
        pairs = [("a", 1), ("a", 2), ("b", 3)]
        out = dict(parallelize(ctx, pairs).group_by_key().collect())
        assert sorted(out["a"]) == [1, 2]
        assert out["b"] == [3]

    def test_broadcast_join(self, ctx):
        pairs = [("x", 1), ("y", 2), ("z", 3)]
        out = (
            parallelize(ctx, pairs)
            .broadcast_join({"x": "X", "z": "Z"})
            .collect()
        )
        assert sorted(out) == [("x", (1, "X")), ("z", (3, "Z"))]

    def test_union(self, ctx):
        left = parallelize(ctx, [1, 2])
        right = parallelize(ctx, [3, 4])
        assert sorted(left.union(right).collect()) == [1, 2, 3, 4]

    def test_union_across_clusters_rejected(self, ctx):
        other = make_default_cluster(num_executors=1, cores_per_executor=1)
        with pytest.raises(EngineError):
            parallelize(ctx, [1]).union(parallelize(other, [2]))

    def test_sample_is_deterministic(self, ctx):
        rdd = parallelize(ctx, range(200))
        first = rdd.sample(0.3, seed=5).collect()
        second = rdd.sample(0.3, seed=5).collect()
        assert first == second
        assert 20 < len(first) < 120

    def test_sample_fraction_validated(self, ctx):
        with pytest.raises(EngineError):
            parallelize(ctx, [1]).sample(0.0)


class TestPipelining:
    def test_narrow_chain_fuses_into_one_stage(self, ctx):
        rdd = (
            parallelize(ctx, range(50))
            .map(lambda x: x + 1)
            .filter(lambda x: x % 2 == 0)
            .map(lambda x: x * 3)
        )
        before = ctx.metrics.counter("stages")
        rdd.collect()
        assert ctx.metrics.counter("stages") - before == 1

    def test_wide_dependency_splits_stages(self, ctx):
        rdd = (
            parallelize(ctx, [("a", 1)] * 20)
            .map(lambda kv: kv)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: kv)
        )
        before = ctx.metrics.counter("stages")
        rdd.collect()
        # combine + reduce + one pipelined map stage after the shuffle.
        # The map before the shuffle fuses into the combine's parent
        # pipeline (one stage).
        assert ctx.metrics.counter("stages") - before == 4

    def test_lazy_charges_fewer_records_than_eager(self, ctx):
        """Pipelining touches records once per stage, the eager layer
        once per transformation — the lazy plan must be cheaper."""
        data = list(range(400))

        def dataflow_eager():
            rdd = RDD.parallelize(ctx, data, 4)
            return (
                rdd.map(lambda x: x + 1)
                .filter(lambda x: x % 2 == 0)
                .map(lambda x: x * 3)
                .collect()
            )

        def dataflow_lazy():
            rdd = LazyRDD.parallelize(ctx, data, 4)
            return (
                rdd.map(lambda x: x + 1)
                .filter(lambda x: x % 2 == 0)
                .map(lambda x: x * 3)
                .collect()
            )

        ctx.reset_metrics()
        eager_out = dataflow_eager()
        eager_seconds = ctx.metrics.simulated_seconds
        ctx.reset_metrics()
        lazy_out = dataflow_lazy()
        lazy_seconds = ctx.metrics.simulated_seconds
        assert lazy_out == eager_out
        assert lazy_seconds < eager_seconds


class TestPersistence:
    def test_persist_reuses_partitions(self, ctx):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = parallelize(ctx, range(10)).map(spy).persist()
        rdd.collect()
        first = len(calls)
        rdd.collect()
        assert len(calls) == first  # no recomputation

    def test_unpersisted_recomputes(self, ctx):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = parallelize(ctx, range(10)).map(spy)
        rdd.collect()
        rdd.collect()
        assert len(calls) == 20

    def test_downstream_of_persisted_uses_cache(self, ctx):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        base = parallelize(ctx, range(10)).map(spy).persist()
        base.map(lambda x: x + 1).collect()
        base.map(lambda x: x + 2).collect()
        assert len(calls) == 10

    def test_unpersist_drops_partitions(self, ctx):
        rdd = parallelize(ctx, range(10)).map(lambda x: x).persist()
        rdd.collect()
        assert rdd.is_materialized()
        rdd.unpersist()
        assert not rdd.is_materialized()


class TestFaultRecovery:
    def test_full_failure_recomputes_from_lineage(self, ctx):
        rdd = parallelize(ctx, range(40)).map(lambda x: x * 2).persist()
        expected = rdd.collect()
        lost = rdd.fail_partitions()
        assert lost == rdd.num_partitions
        assert rdd.collect() == expected

    def test_partial_failure_recomputes_only_holes(self, ctx):
        rdd = parallelize(ctx, range(40)).map(lambda x: x * 2).persist()
        expected = rdd.collect()
        lost = rdd.fail_partitions(indices=[0, 2])
        assert lost == 2
        scheduler = DAGScheduler(ctx)
        assert [x for part in scheduler.materialize(rdd) for x in part] == expected
        assert scheduler.recomputed_partitions == 2

    def test_failure_without_materialization_is_noop(self, ctx):
        rdd = parallelize(ctx, range(4)).persist()
        assert rdd.fail_partitions() == 0

    def test_downstream_results_survive_failure(self, ctx):
        base = parallelize(ctx, range(30)).map(lambda x: x + 1).persist()
        downstream = base.filter(lambda x: x % 3 == 0)
        expected = downstream.collect()
        base.fail_partitions()
        assert downstream.collect() == expected
