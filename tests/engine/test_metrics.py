"""Tests for the metrics registry."""

import pytest

from repro.engine.metrics import MetricsRegistry


class TestPhases:
    def test_charges_attribute_to_current_phase(self):
        m = MetricsRegistry()
        m.push_phase("rule_generation")
        m.charge(2.0)
        m.pop_phase()
        m.charge(1.0)
        assert m.phase("rule_generation") == pytest.approx(2.0)
        assert m.phase("unattributed") == pytest.approx(1.0)
        assert m.simulated_seconds == pytest.approx(3.0)

    def test_nested_phases_attribute_to_innermost(self):
        m = MetricsRegistry()
        m.push_phase("outer")
        m.push_phase("inner")
        m.charge(1.0)
        m.pop_phase()
        m.charge(1.0)
        m.pop_phase()
        assert m.phase("inner") == pytest.approx(1.0)
        assert m.phase("outer") == pytest.approx(1.0)

    def test_unknown_phase_reads_zero(self):
        assert MetricsRegistry().phase("nope") == 0.0


class TestCounters:
    def test_increment_accumulates(self):
        m = MetricsRegistry()
        m.increment("tasks")
        m.increment("tasks", 4)
        assert m.counter("tasks") == 5

    def test_missing_counter_is_zero(self):
        assert MetricsRegistry().counter("nothing") == 0


class TestSnapshotAndMerge:
    def test_snapshot_is_detached(self):
        m = MetricsRegistry()
        m.charge(1.0)
        snap = m.snapshot()
        m.charge(1.0)
        assert snap["simulated_seconds"] == pytest.approx(1.0)
        assert m.simulated_seconds == pytest.approx(2.0)

    def test_merge_folds_totals(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.push_phase("x")
        a.charge(1.0)
        b.push_phase("x")
        b.charge(2.0)
        b.increment("tasks", 3)
        a.merge(b)
        assert a.phase("x") == pytest.approx(3.0)
        assert a.counter("tasks") == 3


class TestMemoryTimeline:
    def test_timeline_records_time_and_bytes(self):
        m = MetricsRegistry()
        m.charge(5.0)
        m.record_memory(1024)
        assert m.memory_timeline == [(5.0, 1024)]
