"""Tests for the cluster context: stages, scheduling, broadcast, cache."""

import pytest

from repro.common.errors import EngineError
from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel


def make_cluster(**kwargs):
    spec_kwargs = {
        "num_executors": kwargs.pop("num_executors", 2),
        "cores_per_executor": kwargs.pop("cores_per_executor", 2),
        "executor_memory_bytes": kwargs.pop("executor_memory_bytes", 1 << 20),
        "straggler_sigma": kwargs.pop("straggler_sigma", 0.0),
    }
    cost = kwargs.pop("cost", None) or CostModel(
        op_seconds=1e-6,
        record_seconds=1e-4,
        task_launch_seconds=0.0,
        stage_overhead_seconds=0.0,
        shuffle_byte_seconds=1e-6,
        broadcast_byte_seconds=1e-6,
        disk_byte_seconds=1e-6,
    )
    return ClusterContext(ClusterSpec(**spec_kwargs), cost)


class TestRunStage:
    def test_outputs_preserve_partition_order(self):
        cluster = make_cluster()

        def kernel(tc, part):
            return part * 2

        result = cluster.run_stage(kernel, [1, 2, 3])
        assert result.outputs == [2, 4, 6]

    def test_empty_stage_is_free(self):
        cluster = make_cluster()
        result = cluster.run_stage(lambda tc, p: p, [])
        assert result.outputs == []
        assert cluster.metrics.simulated_seconds == 0.0

    def test_charges_are_recorded(self):
        cluster = make_cluster()

        def kernel(tc, part):
            tc.add_records(100)
            return None

        cluster.run_stage(kernel, [0])
        assert cluster.metrics.simulated_seconds == pytest.approx(100 * 1e-4)

    def test_shuffle_output_charged_when_requested(self):
        cluster = make_cluster()

        def kernel(tc, part):
            tc.add_output_bytes(1000)
            return None

        before = cluster.metrics.simulated_seconds
        cluster.run_stage(kernel, [0], shuffle_output=True)
        with_shuffle = cluster.metrics.simulated_seconds - before
        cluster.run_stage(kernel, [0], shuffle_output=False)
        without = cluster.metrics.simulated_seconds - before - with_shuffle
        assert with_shuffle > without
        assert cluster.metrics.counter("shuffle_bytes") == 1000

    def test_parallelism_shortens_makespan(self):
        serial = make_cluster(num_executors=1, cores_per_executor=1)
        parallel = make_cluster(num_executors=4, cores_per_executor=2)

        def kernel(tc, part):
            tc.add_records(1000)
            return None

        serial.run_stage(kernel, range(8))
        parallel.run_stage(kernel, range(8))
        assert parallel.metrics.simulated_seconds == pytest.approx(
            serial.metrics.simulated_seconds / 8
        )

    def test_stragglers_stretch_the_stage(self):
        fast = make_cluster(num_executors=4, straggler_sigma=0.0)
        slow = make_cluster(num_executors=4, straggler_sigma=0.5)

        def kernel(tc, part):
            tc.add_records(1000)
            return None

        fast.run_stage(kernel, range(16))
        slow.run_stage(kernel, range(16))
        assert slow.metrics.simulated_seconds > fast.metrics.simulated_seconds

    def test_task_counter(self):
        cluster = make_cluster()
        cluster.run_stage(lambda tc, p: p, range(5))
        assert cluster.metrics.counter("tasks") == 5
        assert cluster.metrics.counter("stages") == 1


class TestBroadcast:
    def test_value_accessible(self):
        cluster = make_cluster()
        handle = cluster.broadcast({"a": 1}, size_bytes=100)
        assert handle.value == {"a": 1}

    def test_cost_scales_with_receivers(self):
        two = make_cluster(num_executors=2)
        eight = make_cluster(num_executors=8)
        two.broadcast(None, 1000)
        eight.broadcast(None, 1000)
        assert eight.metrics.simulated_seconds == pytest.approx(
            7 * two.metrics.simulated_seconds
        )

    def test_single_executor_broadcast_free(self):
        cluster = make_cluster(num_executors=1)
        cluster.broadcast(None, 10_000)
        assert cluster.metrics.simulated_seconds == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(EngineError):
            make_cluster().broadcast(None, -1)


class TestCachedAccess:
    def test_miss_then_hit(self):
        cluster = make_cluster()

        def kernel(tc, part):
            cluster.cached_access(tc, "p0", 500)
            return None

        first = cluster.run_stage(kernel, [0])
        second = cluster.run_stage(kernel, [0])
        # Accesses are deferred (in every execution mode) and replayed
        # by the driver, so the charge lands on the task context after
        # the kernel returns: a miss on the first stage, a hit next.
        assert [tc.disk_bytes for tc in first.tasks] == [500]
        assert [tc.disk_bytes for tc in second.tasks] == [0]

    def test_phase_attribution_through_stages(self):
        cluster = make_cluster()
        with cluster.phase("loading"):
            cluster.run_stage(lambda tc, p: tc.add_records(10), [0])
        assert cluster.metrics.phase("loading") > 0

    def test_reset_metrics_starts_fresh(self):
        cluster = make_cluster()
        cluster.run_stage(lambda tc, p: tc.add_records(10), [0])
        old = cluster.reset_metrics()
        assert old.simulated_seconds > 0
        assert cluster.metrics.simulated_seconds == 0.0


class _StubGrant:
    """Duck-typed budget grant (the cluster never imports the service)."""

    def __init__(self, granted):
        self.granted = granted
        self.releases = 0

    def release(self):
        self.releases += 1


class TestParallelismPrecedence:
    """Explicit argument > budget grant > environment > serial default."""

    def test_explicit_argument_beats_grant_and_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "8")
        cluster = ClusterContext(
            parallelism=5, budget_grant=_StubGrant(granted=2)
        )
        assert cluster.parallelism == 5
        cluster.close()

    def test_grant_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "8")
        cluster = ClusterContext(budget_grant=_StubGrant(granted=3))
        assert cluster.parallelism == 3
        cluster.close()

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "6")
        assert ClusterContext().parallelism == 6

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
        assert ClusterContext().parallelism == 1

    def test_resolve_parallelism_helper(self, monkeypatch):
        from repro.engine.cluster import resolve_parallelism

        monkeypatch.setenv("REPRO_PARALLELISM", "7")
        grant = _StubGrant(granted=2)
        assert resolve_parallelism(4, grant) == 4
        assert resolve_parallelism(None, grant) == 2
        assert resolve_parallelism(None, None) == 7
        monkeypatch.delenv("REPRO_PARALLELISM")
        assert resolve_parallelism(None, None) == 1
        with pytest.raises(EngineError):
            resolve_parallelism(0, None)

    def test_close_releases_grant_once(self):
        grant = _StubGrant(granted=2)
        cluster = ClusterContext(budget_grant=grant)
        cluster.run_stage(lambda tc, p: p, range(4))
        cluster.close()
        cluster.close()
        assert grant.releases == 1

    def test_grant_released_even_with_explicit_override(self):
        # An explicit argument wins the degree, but the allocation is
        # still held and must still be returned on close.
        grant = _StubGrant(granted=2)
        with ClusterContext(parallelism=1, budget_grant=grant):
            pass
        assert grant.releases == 1
