"""Shared-memory column blocks: round-trips, lifetime, worker access."""

import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.data.generators import SyntheticSpec, generate
from repro.engine.shm import (
    MmapTableBlock,
    SharedArray,
    SharedArrayPack,
    SharedTableBlock,
    resolve,
)


def small_table(num_rows=500, seed=3):
    spec = SyntheticSpec(
        num_rows=num_rows,
        cardinalities=[5, 4, 3],
        skew=0.3,
        num_planted_rules=2,
        planted_arity=2,
        effect_scale=10.0,
        noise_scale=1.0,
        base_measure=50.0,
    )
    table, _ = generate(spec, seed=seed)
    return table


def _sum_block(block):
    """Module-level worker body: attach and aggregate a shipped block."""
    return (
        [float(col.sum()) for col in block.columns],
        float(block.measure.sum()),
        block.num_rows,
    )


def _sum_shared_array(shared):
    return float(resolve(shared).sum())


class TestSharedArrayPack:
    def test_roundtrip_values(self):
        a = np.arange(10, dtype=np.int64)
        b = np.linspace(0.0, 1.0, 7)
        pack = SharedArrayPack.create([a, b])
        try:
            out_a, out_b = pack.arrays
            assert np.array_equal(out_a, a)
            assert np.array_equal(out_b, b)
        finally:
            pack.unlink()

    def test_pickled_copy_resolves_read_only(self):
        a = np.arange(20, dtype=np.float64)
        pack = SharedArrayPack.create([a])
        try:
            clone = pickle.loads(pickle.dumps(pack))
            view = clone.arrays[0]
            assert np.array_equal(view, a)
            assert not view.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view[0] = 99.0
        finally:
            pack.unlink()

    def test_owner_writes_are_visible_through_attachments(self):
        pack = SharedArrayPack.create([np.zeros(4)])
        try:
            clone = pickle.loads(pickle.dumps(pack))
            view = clone.arrays[0]
            pack.arrays[0][:] = 7.0
            assert np.array_equal(view, np.full(4, 7.0))
        finally:
            pack.unlink()

    def test_unlink_is_idempotent(self):
        pack = SharedArrayPack.create([np.ones(3)])
        pack.unlink()
        pack.unlink()

    def test_attach_after_unlink_fails(self):
        pack = SharedArrayPack.create([np.ones(3)])
        clone = pickle.loads(pickle.dumps(pack))
        pack.unlink()
        with pytest.raises(FileNotFoundError):
            clone.arrays  # the segment name is gone


class TestSharedArray:
    def test_resolve_passthrough(self):
        plain = np.arange(5)
        assert resolve(plain) is plain
        shared = SharedArray.create(plain)
        try:
            assert np.array_equal(resolve(shared), plain)
        finally:
            shared.unlink()


class TestSharedTableBlocks:
    def test_shared_blocks_match_plain_blocks(self):
        table = small_table()
        plain = table.partition_blocks(4)
        shared = table.partition_blocks(4, shared=True)
        assert len(plain) == len(shared)
        for p, s in zip(plain, shared):
            assert isinstance(s, SharedTableBlock)
            assert (p.index, p.start, p.stop, p.size_bytes) == (
                s.index, s.start, s.stop, s.size_bytes
            )
            assert p.num_rows == s.num_rows
            for pc, sc in zip(p.columns, s.columns):
                assert np.array_equal(pc, sc)
            assert np.array_equal(p.measure, s.measure)

    def test_shared_pack_is_reused_per_table(self):
        table = small_table()
        first = table.partition_blocks(2, shared=True)
        second = table.partition_blocks(3, shared=True)
        assert first[0]._pack is second[0]._pack

    def test_block_pickle_roundtrip(self):
        table = small_table()
        block = table.partition_blocks(4, shared=True)[2]
        clone = pickle.loads(pickle.dumps(block))
        assert clone.start == block.start and clone.stop == block.stop
        for a, b in zip(clone.columns, block.columns):
            assert np.array_equal(a, b)
        assert np.array_equal(clone.measure, block.measure)

    def test_worker_process_reads_shipped_block(self):
        table = small_table()
        blocks = table.partition_blocks(3, shared=True)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = list(pool.map(_sum_block, blocks))
        for block, (col_sums, measure_sum, num_rows) in zip(blocks, remote):
            assert col_sums == [float(c.sum()) for c in block.columns]
            assert measure_sum == pytest.approx(float(block.measure.sum()))
            assert num_rows == block.num_rows

    def test_worker_process_reads_shared_array(self):
        shared = SharedArray.create(np.arange(100, dtype=np.float64))
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                total = pool.submit(_sum_shared_array, shared).result()
            assert total == pytest.approx(4950.0)
        finally:
            shared.unlink()


class TestMmapTableBlocks:
    @staticmethod
    def _file_backed(tmp_path, block_rows=64):
        from repro.data.colfile import write_colfile
        from repro.data.table import Table

        table = small_table()
        path = tmp_path / "t.col"
        write_colfile(table, path, block_rows=block_rows)
        return table, Table.open_colfile(path), path

    def test_mmap_blocks_match_plain_blocks(self, tmp_path):
        plain_table, file_table, _ = self._file_backed(tmp_path)
        plain = plain_table.partition_blocks(4)
        mapped = file_table.partition_blocks(4, shared=True)
        assert len(plain) == len(mapped)
        for p, m in zip(plain, mapped):
            assert isinstance(m, MmapTableBlock)
            assert (p.index, p.start, p.stop, p.size_bytes) == (
                m.index, m.start, m.stop, m.size_bytes
            )
            for pc, mc in zip(p.columns, m.columns):
                assert np.array_equal(pc, mc)
                assert mc.dtype == np.int64
            assert np.array_equal(p.measure, m.measure)

    def test_block_pickle_roundtrip(self, tmp_path):
        _, file_table, _ = self._file_backed(tmp_path)
        block = file_table.partition_blocks(4, shared=True)[2]
        clone = pickle.loads(pickle.dumps(block))
        assert clone.start == block.start and clone.stop == block.stop
        assert clone.file_key == block.file_key
        for a, b in zip(clone.columns, block.columns):
            assert np.array_equal(a, b)
        assert np.array_equal(clone.measure, block.measure)

    def test_worker_process_reads_mmap_block(self, tmp_path):
        _, file_table, _ = self._file_backed(tmp_path)
        blocks = file_table.partition_blocks(3, shared=True)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = list(pool.map(_sum_block, blocks))
        for block, (col_sums, measure_sum, num_rows) in zip(blocks, remote):
            assert col_sums == [float(c.sum()) for c in block.columns]
            assert measure_sum == pytest.approx(float(block.measure.sum()))
            assert num_rows == block.num_rows

    def test_single_colfile_block_partition_is_zero_copy_view(self,
                                                              tmp_path):
        # One colfile block covers the whole table, so any partition of
        # it resolves to read-only views of the mapped pages.
        _, file_table, _ = self._file_backed(tmp_path, block_rows=1000)
        block = file_table.partition_blocks(4, shared=True)[1]
        assert not block.measure.flags.writeable
        assert all(not c.flags.writeable for c in block.columns)

    def test_rewritten_file_is_refused(self, tmp_path):
        from repro.common.errors import DataError
        from repro.data.colfile import write_colfile
        from repro.engine import shm

        table, file_table, path = self._file_backed(tmp_path)
        block = pickle.loads(
            pickle.dumps(file_table.partition_blocks(2, shared=True)[0])
        )
        # Rewrite the file with different contents (and size).
        write_colfile(table.slice(0, 100), path, block_rows=16)
        shm._handles.clear()  # fresh attachment, as in a new worker
        with pytest.raises(DataError):
            block.columns
