"""Tests for the RDD layer."""

import pytest

from repro.common.errors import EngineError
from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel
from repro.engine.rdd import RDD


@pytest.fixture
def ctx():
    return ClusterContext(
        ClusterSpec(num_executors=2, cores_per_executor=2,
                    executor_memory_bytes=1 << 20),
        CostModel(task_launch_seconds=0.0, stage_overhead_seconds=0.0),
    )


class TestCreation:
    def test_parallelize_splits_evenly(self, ctx):
        rdd = RDD.parallelize(ctx, range(10), 4)
        assert rdd.num_partitions == 4
        assert rdd.collect() == list(range(10))

    def test_invalid_partition_count(self, ctx):
        with pytest.raises(EngineError):
            RDD.parallelize(ctx, [1], 0)


class TestTransformations:
    def test_map(self, ctx):
        rdd = RDD.parallelize(ctx, [1, 2, 3], 2)
        assert rdd.map(lambda x: x * 10).collect() == [10, 20, 30]

    def test_filter(self, ctx):
        rdd = RDD.parallelize(ctx, range(10), 3)
        assert rdd.filter(lambda x: x % 2 == 0).collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self, ctx):
        rdd = RDD.parallelize(ctx, [1, 2], 1)
        assert rdd.flat_map(lambda x: [x, x]).collect() == [1, 1, 2, 2]

    def test_map_partitions(self, ctx):
        rdd = RDD.parallelize(ctx, range(6), 2)
        sums = rdd.map_partitions(lambda part: [sum(part)]).collect()
        assert sums == [3, 12]

    def test_count(self, ctx):
        assert RDD.parallelize(ctx, range(17), 4).count() == 17

    def test_union(self, ctx):
        a = RDD.parallelize(ctx, [1], 1)
        b = RDD.parallelize(ctx, [2], 1)
        assert sorted(a.union(b).collect()) == [1, 2]

    def test_union_rejects_foreign_cluster(self, ctx):
        other = ClusterContext(
            ClusterSpec(num_executors=1, cores_per_executor=1,
                        executor_memory_bytes=1 << 20),
            CostModel(),
        )
        a = RDD.parallelize(ctx, [1], 1)
        b = RDD.parallelize(other, [2], 1)
        with pytest.raises(EngineError):
            a.union(b)

    def test_sample_fraction_validated(self, ctx):
        rdd = RDD.parallelize(ctx, range(10), 2)
        with pytest.raises(EngineError):
            rdd.sample(0.0)

    def test_sample_default_seed_varies_per_call(self, ctx):
        # A fixed default seed made every sample identical; the default
        # must now derive a fresh per-call seed from the context.
        rdd = RDD.parallelize(ctx, range(200), 4)
        draws = [tuple(rdd.sample(0.5).collect()) for _ in range(6)]
        assert len(set(draws)) > 1

    def test_sample_explicit_seed_reproduces(self, ctx):
        rdd = RDD.parallelize(ctx, range(200), 4)
        first = rdd.sample(0.5, seed=9).collect()
        second = rdd.sample(0.5, seed=9).collect()
        assert first == second
        assert first != rdd.sample(0.5, seed=10).collect()

    def test_sample_default_reproducible_across_reruns(self):
        # Same spec seed => the derived per-call seed sequence repeats.
        def run():
            ctx = ClusterContext(
                ClusterSpec(num_executors=2, cores_per_executor=2,
                            executor_memory_bytes=1 << 20, seed=13),
                CostModel(),
            )
            rdd = RDD.parallelize(ctx, range(100), 4)
            return [tuple(rdd.sample(0.4).collect()) for _ in range(3)]

        assert run() == run()

    def test_sample_independent_of_execution_mode(self):
        def run(parallelism):
            ctx = ClusterContext(
                ClusterSpec(num_executors=2, cores_per_executor=2,
                            executor_memory_bytes=1 << 20),
                CostModel(),
                parallelism=parallelism,
            )
            rdd = RDD.parallelize(ctx, range(500), 8)
            return rdd.sample(0.3, seed=5).collect()

        assert run(1) == run(4)


class TestWideTransformations:
    def test_reduce_by_key(self, ctx):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("c", 5)]
        rdd = RDD.parallelize(ctx, pairs, 3)
        reduced = dict(rdd.reduce_by_key(lambda a, b: a + b).collect())
        assert reduced == {"a": 4, "b": 6, "c": 5}

    def test_reduce_by_key_charges_shuffle(self, ctx):
        pairs = [(i % 5, 1) for i in range(100)]
        rdd = RDD.parallelize(ctx, pairs, 4)
        rdd.reduce_by_key(lambda a, b: a + b)
        assert ctx.metrics.counter("shuffle_bytes") > 0

    def test_group_by_key(self, ctx):
        pairs = [("x", 1), ("x", 2), ("y", 3)]
        rdd = RDD.parallelize(ctx, pairs, 2)
        grouped = dict(rdd.group_by_key().collect())
        assert sorted(grouped["x"]) == [1, 2]
        assert grouped["y"] == [3]

    def test_join(self, ctx):
        left = RDD.parallelize(ctx, [("a", 1), ("b", 2)], 2)
        right = RDD.parallelize(ctx, [("a", 10), ("c", 30)], 2)
        joined = dict(left.join(right).collect())
        assert joined == {"a": (1, 10)}

    def test_broadcast_join_matches_shuffle_join(self, ctx):
        left_pairs = [("k%d" % (i % 7), i) for i in range(30)]
        small = {"k0": "x", "k3": "y"}
        left = RDD.parallelize(ctx, left_pairs, 3)
        via_broadcast = sorted(left.broadcast_join(small).collect())
        right = RDD.parallelize(ctx, list(small.items()), 2)
        via_shuffle = sorted(left.join(right).collect())
        assert via_broadcast == via_shuffle

    def test_broadcast_join_cheaper_than_shuffle_join(self, ctx):
        # The §3.2 rationale for BJ SIRUM: broadcasting the small side
        # beats repartitioning the big side.
        big = [("k%d" % (i % 100), i) for i in range(3000)]
        small = {"k%d" % i: i for i in range(100)}

        left = RDD.parallelize(ctx, big, 4)
        before = ctx.metrics.simulated_seconds
        left.broadcast_join(small)
        broadcast_cost = ctx.metrics.simulated_seconds - before

        right = RDD.parallelize(ctx, list(small.items()), 4)
        before = ctx.metrics.simulated_seconds
        left.join(right)
        shuffle_cost = ctx.metrics.simulated_seconds - before
        assert broadcast_cost < shuffle_cost


class TestCaching:
    def test_cache_registers_partitions(self, ctx):
        rdd = RDD.parallelize(ctx, range(100), 4).cache()
        misses_before = ctx.cache.misses
        rdd.count()
        # All partitions were already cached by .cache().
        assert ctx.cache.misses == misses_before
        assert ctx.cache.hits >= 4
