"""Tests for cluster specs and the cost model."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.engine.cost import ClusterSpec, CostModel


class TestClusterSpec:
    def test_defaults_match_thesis_cluster(self):
        spec = ClusterSpec()
        assert spec.num_executors == 16
        assert spec.executor_memory_bytes == 45 * 1024**3

    def test_storage_pool_is_fraction_of_total(self):
        spec = ClusterSpec(
            num_executors=2,
            executor_memory_bytes=100,
            storage_fraction=0.6,
        )
        assert spec.total_storage_bytes == 120

    def test_no_stragglers_by_default(self):
        spec = ClusterSpec(num_executors=4)
        np.testing.assert_array_equal(spec.straggler_factors, np.ones(4))

    def test_straggler_factors_deterministic_per_seed(self):
        a = ClusterSpec(num_executors=8, straggler_sigma=0.2, seed=3)
        b = ClusterSpec(num_executors=8, straggler_sigma=0.2, seed=3)
        np.testing.assert_array_equal(a.straggler_factors, b.straggler_factors)

    def test_straggler_median_normalized(self):
        spec = ClusterSpec(num_executors=9, straggler_sigma=0.3, seed=5)
        assert np.median(spec.straggler_factors) == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_executors": 0},
            {"cores_per_executor": 0},
            {"executor_memory_bytes": 0},
            {"storage_fraction": 0.0},
            {"storage_fraction": 1.5},
            {"straggler_sigma": -1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterSpec(**kwargs)


class TestCostModel:
    def test_task_seconds_combines_rates(self):
        cost = CostModel(
            op_seconds=1.0,
            light_op_seconds=0.5,
            record_seconds=2.0,
            disk_byte_seconds=3.0,
        )
        assert cost.task_seconds(ops=2, records=3, disk_bytes=4,
                                 light_ops=2) == pytest.approx(21.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(op_seconds=-1)

    def test_zero_work_is_free(self):
        assert CostModel().task_seconds(0, 0, 0) == 0.0
