"""Speculative-execution scheduling (thesis §5.7.2 mitigation)."""

import pytest

from repro.common.errors import ConfigError
from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel


def make_ctx(sigma, speculative, executors=8, multiplier=1.5, seed=7):
    spec = ClusterSpec(
        num_executors=executors,
        cores_per_executor=2,
        executor_memory_bytes=64 * 1024**2,
        straggler_sigma=sigma,
        seed=seed,
        speculative_execution=speculative,
        speculation_multiplier=multiplier,
    )
    return ClusterContext(spec, CostModel())


def run_uniform_stage(ctx, num_tasks=32, work=200):
    def kernel(tc, _part):
        tc.add_ops(work)
        return None

    return ctx.run_stage(kernel, [None] * num_tasks, name="uniform")


class TestSpeculation:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ClusterSpec(speculation_multiplier=1.0)

    def test_no_stragglers_means_no_clones(self):
        ctx = make_ctx(sigma=0.0, speculative=True)
        run_uniform_stage(ctx)
        assert ctx.metrics.counter("speculative_clones") == 0

    def test_stragglers_trigger_clones(self):
        # seed=7, sigma=1.0 draws one executor ~4.3x slower than the
        # median — comfortably past the 1.5x speculation threshold.
        ctx = make_ctx(sigma=1.0, speculative=True)
        run_uniform_stage(ctx)
        assert ctx.metrics.counter("speculative_clones") > 0

    def test_speculation_shortens_makespan(self):
        plain = make_ctx(sigma=1.0, speculative=False)
        stage_plain = run_uniform_stage(plain)
        clever = make_ctx(sigma=1.0, speculative=True)
        stage_clever = run_uniform_stage(clever)
        assert stage_clever.simulated_seconds < stage_plain.simulated_seconds

    def test_speculation_never_hurts(self):
        # Clone attempts take min(original, clone): makespan is bounded
        # by the unmitigated schedule for every topology seed.
        for seed in range(5):
            plain = make_ctx(sigma=0.5, speculative=False, seed=seed)
            clever = make_ctx(sigma=0.5, speculative=True, seed=seed)
            t_plain = run_uniform_stage(plain).simulated_seconds
            t_clever = run_uniform_stage(clever).simulated_seconds
            assert t_clever <= t_plain + 1e-9

    def test_outputs_unaffected(self):
        ctx = make_ctx(sigma=0.8, speculative=True)

        def kernel(tc, part):
            tc.add_ops(10)
            return part * 2

        stage = ctx.run_stage(kernel, [1, 2, 3], name="x")
        assert stage.outputs == [2, 4, 6]

    def test_empty_stage(self):
        ctx = make_ctx(sigma=0.8, speculative=True)
        stage = ctx.run_stage(lambda tc, p: p, [], name="empty")
        assert stage.simulated_seconds == 0.0

    def test_higher_multiplier_clones_less(self):
        eager = make_ctx(sigma=1.0, speculative=True, multiplier=1.2)
        run_uniform_stage(eager)
        lazy = make_ctx(sigma=1.0, speculative=True, multiplier=3.0)
        run_uniform_stage(lazy)
        assert lazy.metrics.counter("speculative_clones") <= (
            eager.metrics.counter("speculative_clones")
        )
