"""Placement subsystem: ShardMap invariants, precedence, affinity.

The shard map is the one partition abstraction every layer consumes
(table slicing, colfile blocks, shm/mmap block construction, placed
routing), so its invariants are property-tested: shard ranges are a
bijection over the table's rows — full coverage, no overlap, dense
ordered ids — block-aligned except for the last shard, and the
``align=1`` boundaries reproduce the engine's historical
``n * i // num_shards`` formula exactly (load-bearing for the
bit-identity contract).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DataError, EngineError
from repro.engine.cluster import resolve_parallelism, resolve_placement
from repro.engine.placement import (
    PlacementTracker,
    Shard,
    ShardMap,
    default_placement,
)
from repro.service.budget import EngineBudget


def assert_bijection(shard_map, num_rows):
    """Shards tile [0, num_rows): full coverage, no overlap, in order."""
    expected_start = 0
    for i, shard in enumerate(shard_map):
        assert shard.shard_id == i
        assert shard.start == expected_start
        assert shard.stop >= shard.start
        expected_start = shard.stop
    assert expected_start == num_rows
    assert shard_map.num_rows == num_rows


class TestShardMapProperties:
    @given(st.integers(0, 5000), st.integers(1, 64))
    @settings(max_examples=120, deadline=None)
    def test_build_clamped_is_a_bijection(self, num_rows, num_shards):
        shard_map = ShardMap.build(num_rows, num_shards)
        assert_bijection(shard_map, num_rows)
        if num_rows == 0:
            assert len(shard_map) == 0
        else:
            assert len(shard_map) == min(num_shards, num_rows)
            # Clamped maps never hold an empty shard.
            assert all(s.num_rows > 0 for s in shard_map)

    @given(st.integers(1, 5000), st.integers(1, 64))
    @settings(max_examples=120, deadline=None)
    def test_align_one_matches_historical_formula(self, num_rows,
                                                  num_shards):
        shard_map = ShardMap.build(num_rows, num_shards)
        k = len(shard_map)
        assert shard_map.bounds == [num_rows * i // k for i in range(k + 1)]

    @given(st.integers(1, 5000), st.integers(1, 64),
           st.integers(2, 256))
    @settings(max_examples=120, deadline=None)
    def test_aligned_builds_are_block_aligned_except_last(
            self, num_rows, num_shards, align):
        shard_map = ShardMap.build(num_rows, num_shards, align=align)
        assert_bijection(shard_map, num_rows)
        for shard in list(shard_map)[:-1]:
            assert shard.stop % align == 0

    @given(st.integers(0, 2000), st.integers(1, 32))
    @settings(max_examples=100, deadline=None)
    def test_unclamped_keeps_the_requested_count(self, num_rows,
                                                 num_shards):
        shard_map = ShardMap.build(num_rows, num_shards, clamp=False)
        assert len(shard_map) == num_shards
        assert_bijection(shard_map, num_rows)

    @given(st.lists(st.integers(1, 64), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_from_block_rows_tiles_the_blocks(self, block_rows):
        shard_map = ShardMap.from_block_rows(block_rows, align=1)
        assert_bijection(shard_map, sum(block_rows))
        assert [s.num_rows for s in shard_map] == block_rows

    @given(st.integers(1, 2000), st.integers(1, 32))
    @settings(max_examples=100, deadline=None)
    def test_shard_of_row_agrees_with_the_ranges(self, num_rows,
                                                 num_shards):
        shard_map = ShardMap.build(num_rows, num_shards)
        for row in {0, num_rows // 2, num_rows - 1}:
            shard = shard_map.shard_of_row(row)
            assert shard.start <= row < shard.stop


class TestShardMapValidation:
    def test_overlapping_shards_rejected(self):
        with pytest.raises(EngineError, match="no gap or overlap"):
            ShardMap([Shard(0, 0, 6), Shard(1, 4, 10)], 10)

    def test_gapped_shards_rejected(self):
        with pytest.raises(EngineError, match="no gap or overlap"):
            ShardMap([Shard(0, 0, 4), Shard(1, 6, 10)], 10)

    def test_short_coverage_rejected(self):
        with pytest.raises(EngineError, match="cover"):
            ShardMap([Shard(0, 0, 4)], 10)

    def test_unordered_ids_rejected(self):
        with pytest.raises(EngineError, match="dense and ordered"):
            ShardMap([Shard(1, 0, 4), Shard(0, 4, 8)], 8)

    def test_misaligned_interior_boundary_rejected(self):
        with pytest.raises(EngineError, match="alignment"):
            ShardMap([Shard(0, 0, 3), Shard(1, 3, 8)], 8, align=4)

    def test_unclamped_zero_shards_rejected(self):
        with pytest.raises(EngineError, match="at least one shard"):
            ShardMap.build(10, 0, clamp=False)

    def test_placement_for_is_sticky_modulo(self):
        shard_map = ShardMap.build(100, 8)
        assert [shard_map.placement_for(i, 3) for i in range(8)] == [
            0, 1, 2, 0, 1, 2, 0, 1,
        ]
        with pytest.raises(EngineError):
            shard_map.placement_for(0, 0)


class TestTableShardMap:
    def test_shard_map_is_cached_per_count(self, flight_table=None):
        from repro.data.generators import flight_table

        table = flight_table()
        first = table.shard_map(4)
        assert table.shard_map(4) is first
        assert table.shard_map(2) is not first
        assert first.version == table.dataset_version
        assert_bijection(first, len(table))

    def test_version_bumps_with_dataset_version(self):
        from repro.data.generators import flight_table

        a, b = flight_table(), flight_table()
        assert a.dataset_version != b.dataset_version
        assert a.shard_map(4).version == a.dataset_version
        assert b.shard_map(4).version == b.dataset_version
        assert a.shard_map(4) != b.shard_map(4)

    def test_empty_table_cannot_be_sharded(self):
        from repro.data.schema import Schema
        from repro.data.table import Table

        table = Table.from_rows(
            Schema(dimensions=("d",), measure="m"), rows=[]
        )
        with pytest.raises(DataError, match="empty table"):
            table.shard_map(4)


class TestPlacementResolution:
    def test_default_placement_env_spellings(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLACEMENT", raising=False)
        assert default_placement() is False
        for value, expected in [("1", True), ("true", True), ("on", True),
                                ("0", False), ("no", False), ("", False)]:
            monkeypatch.setenv("REPRO_PLACEMENT", value)
            assert default_placement() is expected
        monkeypatch.setenv("REPRO_PLACEMENT", "sideways")
        with pytest.raises(EngineError):
            default_placement()

    def test_explicit_beats_grant_and_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLACEMENT", "1")
        budget = EngineBudget(max_engine_workers=4)
        grant = budget.acquire(2)
        try:
            assert resolve_placement(False, grant) is False
            assert resolve_placement(True, None) is True
        finally:
            grant.release()

    def test_placed_grant_turns_placement_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLACEMENT", raising=False)
        budget = EngineBudget(max_engine_workers=4)
        grant = budget.acquire(2)
        try:
            assert grant.slots  # budget grants carry slot ids
            assert resolve_placement(None, grant) is True
        finally:
            grant.release()

    def test_env_is_the_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLACEMENT", "1")
        assert resolve_placement(None, None) is True
        monkeypatch.delenv("REPRO_PLACEMENT", raising=False)
        assert resolve_placement(None, None) is False


class TestParallelismPrecedence:
    """Satellite: explicit arg > placed/budget grant > env > serial."""

    def test_explicit_beats_grant(self):
        budget = EngineBudget(max_engine_workers=8)
        grant = budget.acquire(4)
        try:
            assert resolve_parallelism(2, grant) == 2
        finally:
            grant.release()

    def test_placed_grant_contributes_its_slot_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "7")
        budget = EngineBudget(max_engine_workers=8)
        grant = budget.acquire(3)
        try:
            assert len(grant.slots) == grant.granted == 3
            assert resolve_parallelism(None, grant) == 3
        finally:
            grant.release()

    def test_grant_without_slots_contributes_granted(self, monkeypatch):
        class BareGrant:
            granted = 5
            slots = ()

        monkeypatch.setenv("REPRO_PARALLELISM", "7")
        assert resolve_parallelism(None, BareGrant()) == 5

    def test_env_then_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "6")
        assert resolve_parallelism(None, None) == 6
        monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
        assert resolve_parallelism(None, None) == 1


class TestPlacementTracker:
    def test_hits_misses_and_rebalances(self):
        tracker = PlacementTracker()
        tracker.bind(ShardMap.build(100, 4, version=1))
        tracker.record(0, 0)          # first touch: miss
        tracker.record(0, 0)          # same slot again: hit
        tracker.record(1, 1)          # miss
        tracker.record(1, 2)          # moved slots: miss
        tracker.record_stage(True)
        tracker.record_stage(False)
        stats = tracker.stats()
        assert stats["shards"] == 4
        assert stats["affinity_hits"] == 1
        assert stats["affinity_misses"] == 3
        assert stats["affinity_hit_rate"] == pytest.approx(0.25)
        assert stats["rebalances"] == 0
        assert stats["placed_stages"] == 1
        assert stats["unplaced_stages"] == 1

    def test_rebind_across_versions_counts_a_rebalance(self):
        tracker = PlacementTracker()
        tracker.bind(ShardMap.build(100, 4, version=1))
        tracker.record(0, 0)
        tracker.bind(ShardMap.build(100, 4, version=2))
        assert tracker.stats()["rebalances"] == 1
        # The affinity table reset: the same pin is a fresh miss.
        tracker.record(0, 0)
        assert tracker.stats()["affinity_misses"] == 2
        # Rebinding the same version is not a rebalance.
        tracker.bind(ShardMap.build(100, 4, version=2))
        assert tracker.stats()["rebalances"] == 1

    def test_worker_failure_counts_and_clears_pins(self):
        tracker = PlacementTracker()
        tracker.bind(ShardMap.build(100, 4, version=1))
        tracker.record(0, 0)
        tracker.record(1, 1)
        tracker.worker_failure(shard_ids=[1])
        stats = tracker.stats()
        assert stats["worker_failures"] == 1
        assert stats["rebalances"] == 1
        # Shard 1 lost its pin with the dead worker: re-placing it on a
        # survivor is a fresh miss, not a broken-affinity anomaly...
        tracker.record(1, 0)
        assert tracker.stats()["affinity_misses"] == 3
        # ...while shard 0's affinity survived untouched.
        tracker.record(0, 0)
        assert tracker.stats()["affinity_hits"] == 1
