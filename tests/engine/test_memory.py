"""Tests for the LRU partition cache (thesis §4.5 memory behaviour)."""

from repro.engine.memory import CacheManager
from repro.engine.metrics import MetricsRegistry


def make_cache(capacity):
    return CacheManager(capacity, MetricsRegistry())


class TestCacheBasics:
    def test_first_access_misses_and_charges_disk(self):
        cache = make_cache(100)
        assert cache.access("p0", 40) == 40
        assert cache.misses == 1

    def test_second_access_hits_for_free(self):
        cache = make_cache(100)
        cache.access("p0", 40)
        assert cache.access("p0", 40) == 0
        assert cache.hits == 1

    def test_cached_bytes_tracked(self):
        cache = make_cache(100)
        cache.access("p0", 40)
        cache.access("p1", 30)
        assert cache.cached_bytes == 70


class TestEviction:
    def test_lru_eviction_order(self):
        cache = make_cache(100)
        cache.access("p0", 50)
        cache.access("p1", 50)
        cache.access("p0", 50)      # refresh p0
        cache.access("p2", 50)      # evicts p1 (least recently used)
        assert cache.contains("p0")
        assert not cache.contains("p1")
        assert cache.contains("p2")

    def test_thrash_when_working_set_exceeds_memory(self):
        # Thesis §4.5: a dataset larger than storage memory causes
        # continuous disk reads on every pass.
        cache = make_cache(100)
        partitions = [("p%d" % i, 60) for i in range(2)]
        total_disk = 0
        for _ in range(5):
            for key, size in partitions:
                total_disk += cache.access(key, size)
        # Every access misses: 10 reads of 60 bytes.
        assert total_disk == 600

    def test_fits_in_memory_after_first_pass(self):
        cache = make_cache(200)
        partitions = [("p%d" % i, 60) for i in range(3)]
        first_pass = sum(cache.access(k, s) for k, s in partitions)
        second_pass = sum(cache.access(k, s) for k, s in partitions)
        assert first_pass == 180
        assert second_pass == 0

    def test_oversized_partition_never_cached(self):
        cache = make_cache(100)
        cache.access("big", 500)
        assert not cache.contains("big")
        assert cache.cached_bytes == 0

    def test_invalidate(self):
        cache = make_cache(100)
        cache.access("p0", 40)
        cache.invalidate("p0")
        assert not cache.contains("p0")
        assert cache.cached_bytes == 0
