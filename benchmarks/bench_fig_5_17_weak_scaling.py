"""Figure 5.17 — Weak scaling of Optimized SIRUM (TLC samples).

Paper: doubling data and executors together (4/TLC_40m -> 16/TLC_160m)
would ideally keep runtime flat; measured times rise slightly because
stragglers stretch stage makespans as the cluster grows.
"""

from repro.bench import dataset_by_name, make_cluster, print_table, run_variant

STEPS = [(4, 5000), (8, 10000), (16, 20000)]


def run_weak_scaling():
    rows = []
    for executors, num_rows in STEPS:
        table = dataset_by_name("tlc", num_rows=num_rows)
        cluster = make_cluster(
            num_executors=executors,
            straggler_sigma=0.25,
        )
        result = run_variant(
            table, "optimized", cluster=cluster, k=5, sample_size=16,
            seed=3,
        )
        rows.append([
            "%d exec / %d rows" % (executors, num_rows),
            result.simulated_seconds,
        ])
    return rows


def test_fig_5_17(once):
    rows = once(run_weak_scaling)
    ideal = rows[0][1]
    table_rows = [row + [row[1] / ideal] for row in rows]
    print_table(
        "Fig 5.17 — Weak scaling (data grows with executors)",
        ["configuration", "time (s)", "vs ideal flat line"],
        table_rows,
        note="thesis: slight increase over the ideal horizontal line, "
             "caused by stragglers",
    )
    times = [row[1] for row in rows]
    # Runtime stays near the ideal flat line.  The thesis measures a
    # consistent small rise (its tasks stay pinned to straggler nodes);
    # our LPT scheduler rebalances, so the deviation is smaller and not
    # always upward — we assert flat-ness plus some straggler wobble.
    assert max(times) < 1.5 * times[0]
    assert max(times) > times[0]
