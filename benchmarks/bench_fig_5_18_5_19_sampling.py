"""Figures 5.18/5.19 — SIRUM on sample data (TLC, SUSY).

Paper: when the input exceeds cluster memory, mining a 10% sample is
4x+ faster with only a small information-gain loss; 1% still helps;
below that the gain degrades while runtime stops improving — ~1% is
the lowest reasonable sampling rate.
"""

from repro.bench import dataset_by_name, make_cluster, print_table, run_variant

RATES = (1.0, 0.1, 0.01, 0.001)


def run_sampling(dataset, num_rows, sample_size, k, memory_bytes):
    table = dataset_by_name(dataset, num_rows=num_rows)
    rows = []
    for rate in RATES:
        cluster = make_cluster(
            num_executors=2, executor_memory_bytes=memory_bytes
        )
        result = run_variant(
            table, "optimized", cluster=cluster, k=k,
            sample_size=sample_size, seed=3,
            sample_data_fraction=None if rate == 1.0 else rate,
        )
        rows.append([
            "%.1f%%" % (100 * rate),
            result.simulated_seconds,
            result.information_gain,
        ])
    return rows


HEADERS = ["sampling rate", "execution time (s)", "information gain"]


def _check(rows):
    full_time, full_gain = rows[0][1], rows[0][2]
    ten_time, ten_gain = rows[1][1], rows[1][2]
    last_gain = rows[-1][2]
    assert ten_time < full_time / 2          # big speedup at 10%
    # The thesis reports a very small gain loss at 10%; at 1/1000 data
    # scale a 10% sample is proportionally much smaller, so we assert
    # "retains the bulk of the gain" rather than near-equality.
    assert ten_gain > 0.4 * full_gain
    assert last_gain < ten_gain              # quality degrades eventually


def test_fig_5_18_tlc(once):
    rows = once(lambda: run_sampling("tlc", 20000, 16, 5, 128 * 1024))
    print_table(
        "Fig 5.18 — SIRUM on sample data (TLC, memory-constrained)",
        HEADERS, rows,
        note="thesis: >=4x faster at 10% with little gain loss; gain "
             "collapses at very low rates",
    )
    _check(rows)


def test_fig_5_19_susy(once):
    # 24k rows keep the 10% sample large enough (2400 rows, d=18) for
    # sample-mined rules to retain most of the full-data gain.
    rows = once(lambda: run_sampling("susy", 24000, 8, 3, 64 * 1024))
    print_table(
        "Fig 5.19 — SIRUM on sample data (SUSY, 8GB-analog memory)",
        HEADERS, rows,
        note="same trade-off as TLC; ~1% is the lowest useful rate",
    )
    _check(rows)
