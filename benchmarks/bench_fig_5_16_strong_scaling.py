"""Figure 5.16 — Strong scaling of Optimized SIRUM (TLC samples).

Paper: with data fixed and executors grown 2 -> 16, the small TLC_2m
improves only ~3x (overheads dominate), while the 10x larger sample
improves ~6x over 8x more executors — including a super-linear step
when the working set first fits in the grown cluster's memory.
"""

from repro.bench import dataset_by_name, make_cluster, print_table, run_variant

EXECUTORS = (2, 4, 8, 16)

# Per-executor memory chosen so the large dataset does not fit at 2
# executors but does at 4+ (the thesis's super-linear step).
EXECUTOR_MEMORY = 256 * 1024


def run_strong_scaling():
    rows = []
    for label, num_rows in [("tlc_small", 2000), ("tlc_large", 20000)]:
        table = dataset_by_name("tlc", num_rows=num_rows)
        times = []
        for executors in EXECUTORS:
            cluster = make_cluster(
                num_executors=executors,
                executor_memory_bytes=EXECUTOR_MEMORY,
            )
            result = run_variant(
                table, "optimized", cluster=cluster, k=5,
                sample_size=16, seed=3,
            )
            times.append(result.simulated_seconds)
        rows.append([label] + times + [times[0] / times[-1]])
    return rows


def test_fig_5_16(once):
    rows = once(run_strong_scaling)
    print_table(
        "Fig 5.16 — Strong scaling (executors 2 -> 16)",
        ["dataset"] + ["%d exec (s)" % e for e in EXECUTORS]
        + ["2->16 speedup"],
        rows,
        note="small data scales sub-linearly (~3x); larger data scales "
             "better, with a super-linear step once it fits in memory",
    )
    small, large = rows
    # Times decrease monotonically with executors.
    assert small[1] > small[2] > small[3] > small[4]
    assert large[1] > large[2] > large[3] > large[4]
    # The larger dataset scales better than the small one.
    assert large[5] > small[5]
    # Sub-linear for the small dataset (8x executors, < 8x speedup).
    assert small[5] < 8
