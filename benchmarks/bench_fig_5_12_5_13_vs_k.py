"""Figures 5.12/5.13 — Optimized vs Baseline across k (GDELT, SUSY).

Paper: Optimized SIRUM is consistently about five times faster than
Baseline for k in {10, 20, 50}, and Optimized* (matching Baseline's
KL-divergence with extra rules) retains most of the advantage.
"""

from repro.bench import dataset_by_name, print_table, run_variant


def run_vs_k(dataset, num_rows, sample_size, k_values):
    table = dataset_by_name(dataset, num_rows=num_rows)
    rows = []
    for k in k_values:
        base = run_variant(table, "baseline", k=k,
                           sample_size=sample_size, seed=3)
        optimized = run_variant(table, "optimized", k=k,
                                sample_size=sample_size, seed=3)
        optimized_star = run_variant(
            table, "optimized", k=k, sample_size=sample_size, seed=3,
            target_kl=base.final_kl, max_rules=3 * k,
        )
        rows.append([
            k,
            base.simulated_seconds,
            optimized.simulated_seconds,
            optimized_star.simulated_seconds,
            base.simulated_seconds / optimized.simulated_seconds,
        ])
    return rows


HEADERS = ["k", "baseline (s)", "optimized (s)", "optimized* (s)",
           "speedup"]


def _check(rows):
    for _k, base, opt, opt_star, speedup in rows:
        assert speedup > 1.5
        assert opt <= opt_star


def test_fig_5_12_gdelt(once):
    rows = once(lambda: run_vs_k("gdelt", 1500, 64, (10, 20, 50)))
    print_table(
        "Fig 5.12 — Optimized vs Baseline across k (GDELT, |s|=256 "
        "in the thesis; 64 here)",
        HEADERS, rows,
        note="thesis: consistently ~5x",
    )
    _check(rows)


def test_fig_5_13_susy(once):
    rows = once(lambda: run_vs_k("susy", 700, 8, (10, 20)))
    print_table(
        "Fig 5.13 — Optimized vs Baseline across k (SUSY)",
        HEADERS, rows,
        note="thesis: consistently ~5x (k=50 omitted at laptop scale)",
    )
    _check(rows)
