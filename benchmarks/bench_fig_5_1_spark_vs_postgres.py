"""Figure 5.1 — Baseline SIRUM on Spark vs PostgreSQL (single node).

Paper: on Income with one compute node, PostgreSQL is about six times
slower — it runs a single process on one CPU and optimizes for
disk-based access, while Spark parallelizes across the node's cores
and caches the input in memory.
"""

from repro.bench import dataset_by_name, print_table
from repro.platforms import run_baseline_sirum


def run_platforms():
    table = dataset_by_name("income", num_rows=3000)
    rows = []
    for platform in ("spark", "postgres"):
        result, _cluster = run_baseline_sirum(
            platform, table, k=6, sample_size=16, num_executors=1, seed=0
        )
        rows.append([platform, result.simulated_seconds])
    return rows


def test_fig_5_1(once):
    rows = once(run_platforms)
    ratio = rows[1][1] / rows[0][1]
    print_table(
        "Fig 5.1 — Baseline SIRUM: Spark vs PostgreSQL (1 node, Income)",
        ["platform", "execution time (s)"],
        rows + [["postgres/spark ratio", ratio]],
        note="thesis: PostgreSQL ~6x slower (single process, one CPU, "
             "disk-oriented)",
    )
    assert 2.0 < ratio < 40.0
