"""Figure 5.5 — Fast candidate pruning vs |s| (GDELT, k=20).

Paper: the inverted-index LCA computation roughly halves rule-
generation time, with the speedup growing as |s| grows (more pairwise
comparisons avoided per data tuple).
"""

from repro.bench import dataset_by_name, print_table, run_variant

SAMPLE_SIZES = (64, 128, 256)


def run_fast_pruning():
    table = dataset_by_name("gdelt", num_rows=1200)
    rows = []
    for sample_size in SAMPLE_SIZES:
        base = run_variant(table, "baseline", k=20,
                           sample_size=sample_size, seed=3)
        fast = run_variant(table, "fastpruning", k=20,
                           sample_size=sample_size, seed=3)
        rows.append([
            sample_size,
            base.phase_seconds("candidate_pruning"),
            fast.phase_seconds("candidate_pruning"),
            base.rule_generation_seconds,
            fast.rule_generation_seconds,
            base.phase_seconds("candidate_pruning")
            / fast.phase_seconds("candidate_pruning"),
        ])
    return rows


def test_fig_5_5(once):
    rows = once(run_fast_pruning)
    print_table(
        "Fig 5.5 — Fast candidate pruning (GDELT, k=20)",
        ["|s|", "baseline prune (s)", "fast prune (s)",
         "baseline rule gen (s)", "fast rule gen (s)", "prune speedup"],
        rows,
        note="thesis: ~2x rule-generation speedup, growing with |s|",
    )
    for row in rows:
        assert row[5] > 1.3           # pruning clearly faster
        assert row[4] < row[3]        # rule generation faster overall
    # Speedup does not shrink as |s| grows.
    assert rows[-1][5] >= rows[0][5] * 0.9
