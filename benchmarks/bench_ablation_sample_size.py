"""Ablation — pruning sample size |s| vs rule quality (thesis §3.1.1).

The thesis considers |s| "sufficiently large if the KL-divergence of
the eventual rule set is close to the one produced using exhaustive
candidate exploration", and recommends |s|=64 for the 9-dimension
datasets.  This ablation sweeps |s| on GDELT and compares against the
exhaustive miner's KL.
"""

from repro.bench import dataset_by_name, print_table, run_variant

SAMPLE_SIZES = (4, 16, 64, 256)


def run_sample_sweep():
    table = dataset_by_name("gdelt", num_rows=1500)
    exhaustive = run_variant(
        table, "baseline", k=5, seed=3, exhaustive=True
    )
    rows = [["exhaustive", exhaustive.final_kl,
             exhaustive.rule_generation_seconds]]
    for sample_size in SAMPLE_SIZES:
        result = run_variant(
            table, "baseline", k=5, sample_size=sample_size, seed=3
        )
        rows.append([
            "|s|=%d" % sample_size,
            result.final_kl,
            result.rule_generation_seconds,
        ])
    return rows


def test_ablation_sample_size(once):
    rows = once(run_sample_sweep)
    print_table(
        "Ablation — sample size vs rule-set quality (GDELT, k=5)",
        ["candidates", "final KL", "rule generation (s)"],
        rows,
        note="KL approaches the exhaustive miner's as |s| grows; "
             "|s|=64 is already sufficient (thesis §3.3)",
    )
    exhaustive_kl = rows[0][1]
    kls = {label: kl for label, kl, _ in rows[1:]}
    # Large samples reach (near-)exhaustive quality.
    assert kls["|s|=64"] <= exhaustive_kl * 1.3 + 1e-9
    assert kls["|s|=256"] <= exhaustive_kl * 1.15 + 1e-9
    # Tiny samples cannot do better than big ones.
    assert kls["|s|=4"] >= kls["|s|=256"] - 1e-9
