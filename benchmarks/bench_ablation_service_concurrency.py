"""Ablation — concurrent mining service vs the serial uncached path.

The SIRUM workload is interactive: analysts replay overlapping mining
and SQL requests against the same dataset.  This ablation scripts that
shape — a repeated mixed mine + SQL workload — and runs it (a)
serially through the bare engines with no caching (the pre-service
path: a full ``mine()`` and a fresh no-cache SQL engine per request)
and (b) through :class:`~repro.service.RuleMiningService` with 8
concurrent clients, where request coalescing and the versioned result
cache collapse the repeats.

Results must be bit-identical between the two paths.  Like the other
engine-level ablations this measures *real* wall-clock seconds, and it
emits one machine-readable JSON line (``SERVICE_CONCURRENCY_JSON``)
with the throughput/latency numbers.
"""

from repro.bench import (
    build_service_workload,
    dataset_by_name,
    json_result_line,
    latency_summary,
    print_table,
    run_serial_reference,
    run_service_workload,
    service_results_match,
)
from repro.service import RuleMiningService, ServiceConfig

ROWS = 4000
NUM_REQUESTS = 48
NUM_CLIENTS = 8
DATASET = "income"


def run_comparison():
    table = dataset_by_name(DATASET, num_rows=ROWS)
    requests = build_service_workload(
        DATASET, list(table.schema.dimensions), table.schema.measure,
        num_requests=NUM_REQUESTS, k=3, sample_size=16, seed=0,
    )
    serial = run_serial_reference(table, DATASET, requests)
    service = RuleMiningService(ServiceConfig(num_workers=4))
    try:
        service.register_dataset(DATASET, table)
        concurrent = run_service_workload(
            service, DATASET, requests, num_clients=NUM_CLIENTS
        )
        stats = service.stats()
    finally:
        service.close()
    return {
        "serial_seconds": serial["wall_seconds"],
        "service_seconds": concurrent["wall_seconds"],
        "serial_rps": serial["throughput_rps"],
        "service_rps": concurrent["throughput_rps"],
        "service_latency": latency_summary(concurrent["latencies"]),
        "serial_latency": latency_summary(serial["latencies"]),
        "cache_hits": stats["cache"]["hits"],
        "coalesce_hits": stats["coalesce_hits"],
        "jobs_executed": stats["jobs"]["completed"],
        "results_match": service_results_match(
            serial["results"], concurrent["results"]
        ),
    }


def test_ablation_service_concurrency(once):
    out = once(run_comparison)
    ratio = out["service_rps"] / out["serial_rps"]
    print_table(
        "Ablation — mining service (8 clients) vs serial uncached",
        ["path", "wall seconds", "req/s"],
        [
            ["serial, uncached", out["serial_seconds"], out["serial_rps"]],
            ["service, 8 clients", out["service_seconds"],
             out["service_rps"]],
            ["throughput ratio", "", ratio],
        ],
        note="identical results; %d cache hits, %d coalesced, "
             "%d jobs executed for %d requests" % (
                 out["cache_hits"], out["coalesce_hits"],
                 out["jobs_executed"], NUM_REQUESTS,
             ),
    )
    print(json_result_line("SERVICE_CONCURRENCY_JSON", {
        "requests": NUM_REQUESTS,
        "clients": NUM_CLIENTS,
        "serial_seconds": out["serial_seconds"],
        "service_seconds": out["service_seconds"],
        "serial_rps": out["serial_rps"],
        "service_rps": out["service_rps"],
        "throughput_ratio": ratio,
        "service_latency": out["service_latency"],
        "serial_latency": out["serial_latency"],
        "cache_hits": out["cache_hits"],
        "coalesce_hits": out["coalesce_hits"],
        "jobs_executed": out["jobs_executed"],
    }))
    assert out["results_match"]
    # Repeated interactive workloads must gain at least the acceptance
    # floor of 3x; typical runs land far above it (cache + coalescing
    # execute only the distinct requests).
    assert ratio >= 3.0