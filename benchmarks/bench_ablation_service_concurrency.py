"""Ablation — concurrent mining service vs the serial uncached path.

The SIRUM workload is interactive: analysts replay overlapping mining
and SQL requests against the same dataset.  This ablation scripts that
shape — a repeated mixed mine + SQL workload — and runs it (a)
serially through the bare engines with no caching (the pre-service
path: a full ``mine()`` and a fresh no-cache SQL engine per request)
and (b) through :class:`~repro.service.RuleMiningService` with 8
concurrent clients, where request coalescing and the versioned result
cache collapse the repeats.

A second comparison targets the *other* concurrency axis: 8
simultaneous **distinct** mining jobs (nothing coalesces), each
requesting ``parallelism=4`` engine workers — 32 runnable workers on
the host.  ``admission="budget"`` caps the aggregate at
``max_engine_workers`` and must hold tail (p95) latency no worse than
the oversubscribed baseline, with bit-identical results.

Results must be bit-identical between all paths.  Like the other
engine-level ablations this measures *real* wall-clock seconds, and it
emits machine-readable JSON lines (``SERVICE_CONCURRENCY_JSON`` /
``SERVICE_BUDGET_JSON``) with the throughput/latency numbers.

Set ``REPRO_BENCH_SMOKE=1`` (CI's bench-smoke job) to shrink the
workload: the JSON lines and correctness/floor assertions stay, only
the sizes drop.
"""

import os

from repro.bench import (
    bench_smoke_enabled,
    build_mining_burst_workload,
    build_service_workload,
    dataset_by_name,
    json_result_line,
    latency_summary,
    print_table,
    run_serial_reference,
    run_service_workload,
    service_results_match,
)
from repro.service import RuleMiningService, ServiceConfig

SMOKE = bench_smoke_enabled()

ROWS = 1500 if SMOKE else 4000
NUM_REQUESTS = 24 if SMOKE else 48
NUM_CLIENTS = 8
DATASET = "income"

#: The budget comparison: 8 distinct jobs x 4 requested engine workers.
BUDGET_JOBS = 8
ENGINE_PARALLELISM = 4
MAX_ENGINE_WORKERS = 4
BUDGET_ROWS = 4000 if SMOKE else 12_000
#: Slack on the latency gates — the two runs race the same OS
#: scheduler.  The smoke gate uses mean latency (p95 over 8 samples is
#: the max, too noisy at smoke size) and correspondingly more slack.
P95_SLACK = 1.10
SMOKE_MEAN_SLACK = 1.25


def run_comparison():
    table = dataset_by_name(DATASET, num_rows=ROWS)
    requests = build_service_workload(
        DATASET, list(table.schema.dimensions), table.schema.measure,
        num_requests=NUM_REQUESTS, k=3, sample_size=16, seed=0,
    )
    serial = run_serial_reference(table, DATASET, requests)
    service = RuleMiningService(ServiceConfig(num_workers=4))
    try:
        service.register_dataset(DATASET, table)
        concurrent = run_service_workload(
            service, DATASET, requests, num_clients=NUM_CLIENTS
        )
        stats = service.stats()
    finally:
        service.close()
    return {
        "serial_seconds": serial["wall_seconds"],
        "service_seconds": concurrent["wall_seconds"],
        "serial_rps": serial["throughput_rps"],
        "service_rps": concurrent["throughput_rps"],
        "service_latency": latency_summary(concurrent["latencies"]),
        "serial_latency": latency_summary(serial["latencies"]),
        "cache_hits": stats["cache"]["hits"],
        "coalesce_hits": stats["coalesce_hits"],
        "jobs_executed": stats["jobs"]["completed"],
        "results_match": service_results_match(
            serial["results"], concurrent["results"]
        ),
    }


def test_ablation_service_concurrency(once):
    out = once(run_comparison)
    ratio = out["service_rps"] / out["serial_rps"]
    print_table(
        "Ablation — mining service (8 clients) vs serial uncached",
        ["path", "wall seconds", "req/s"],
        [
            ["serial, uncached", out["serial_seconds"], out["serial_rps"]],
            ["service, 8 clients", out["service_seconds"],
             out["service_rps"]],
            ["throughput ratio", "", ratio],
        ],
        note="identical results; %d cache hits, %d coalesced, "
             "%d jobs executed for %d requests" % (
                 out["cache_hits"], out["coalesce_hits"],
                 out["jobs_executed"], NUM_REQUESTS,
             ),
    )
    print(json_result_line("SERVICE_CONCURRENCY_JSON", {
        "requests": NUM_REQUESTS,
        "clients": NUM_CLIENTS,
        "smoke": SMOKE,
        "serial_seconds": out["serial_seconds"],
        "service_seconds": out["service_seconds"],
        "serial_rps": out["serial_rps"],
        "service_rps": out["service_rps"],
        "throughput_ratio": ratio,
        "service_latency": out["service_latency"],
        "serial_latency": out["serial_latency"],
        "cache_hits": out["cache_hits"],
        "coalesce_hits": out["coalesce_hits"],
        "jobs_executed": out["jobs_executed"],
    }))
    assert out["results_match"]
    # Repeated interactive workloads must gain at least the acceptance
    # floor of 3x; typical runs land far above it (cache + coalescing
    # execute only the distinct requests).  This is the perf-regression
    # gate CI's bench-smoke job enforces on every push.
    assert ratio >= 3.0


def run_admission_workload(admission):
    """The distinct-jobs burst under one admission policy."""
    table = dataset_by_name(DATASET, num_rows=BUDGET_ROWS)
    requests = build_mining_burst_workload(
        num_requests=BUDGET_JOBS, k=3, sample_size=16
    )
    service = RuleMiningService(ServiceConfig(
        num_workers=BUDGET_JOBS,
        engine_parallelism=ENGINE_PARALLELISM,
        admission=admission,
        max_engine_workers=MAX_ENGINE_WORKERS,
    ))
    try:
        service.register_dataset(DATASET, table)
        run = run_service_workload(
            service, DATASET, requests, num_clients=BUDGET_JOBS
        )
        stats = service.stats()
    finally:
        service.close()
    return {
        "results": run["results"],
        "wall_seconds": run["wall_seconds"],
        "latency": latency_summary(run["latencies"]),
        "budget": stats["budget"],
    }


def run_budget_comparison():
    over = run_admission_workload("oversubscribe")
    budget = run_admission_workload("budget")
    return {
        "over": over,
        "budget": budget,
        "results_match": service_results_match(
            over["results"], budget["results"]
        ),
    }


def test_ablation_budget_admission(once):
    cores = len(os.sched_getaffinity(0))
    out = once(run_budget_comparison)
    over, budget = out["over"], out["budget"]
    print_table(
        "Ablation — engine-worker budget vs oversubscribe "
        "(%d jobs x %d requested workers, budget %d)" % (
            BUDGET_JOBS, ENGINE_PARALLELISM, MAX_ENGINE_WORKERS,
        ),
        ["admission", "wall seconds", "p50 latency", "p95 latency"],
        [
            ["oversubscribe", over["wall_seconds"],
             over["latency"]["p50"], over["latency"]["p95"]],
            ["budget", budget["wall_seconds"],
             budget["latency"]["p50"], budget["latency"]["p95"]],
        ],
        note="identical results: %s; budget peak %d/%d workers, "
             "%d/%d grants degraded; host cores: %d" % (
                 out["results_match"],
                 budget["budget"]["peak_in_use"],
                 budget["budget"]["max_engine_workers"],
                 budget["budget"]["degraded_grants"],
                 budget["budget"]["grants"], cores,
             ),
    )
    print(json_result_line("SERVICE_BUDGET_JSON", {
        "jobs": BUDGET_JOBS,
        "engine_parallelism": ENGINE_PARALLELISM,
        "max_engine_workers": MAX_ENGINE_WORKERS,
        "rows": BUDGET_ROWS,
        "smoke": SMOKE,
        "host_cores": cores,
        "oversubscribe_wall_seconds": over["wall_seconds"],
        "budget_wall_seconds": budget["wall_seconds"],
        "oversubscribe_latency": over["latency"],
        "budget_latency": budget["latency"],
        "budget_stats": budget["budget"],
        "bit_identical": out["results_match"],
    }))
    assert out["results_match"]
    # The budget never lets the aggregate engine degree past the cap.
    assert budget["budget"]["peak_in_use"] <= MAX_ENGINE_WORKERS
    assert budget["budget"]["in_use"] == 0
    # The acceptance gate: admission control must hold tail latency no
    # worse than N x M oversubscription.  Wall-clock comparisons need
    # real contention, so the gate requires a host wide enough for the
    # budget itself to matter.  With only BUDGET_JOBS samples per run,
    # p95 is the single slowest job — meaningful at full size but pure
    # scheduler noise at smoke size — so the smoke gate compares mean
    # latency (stable over 8 samples) with wider slack instead.
    if cores >= MAX_ENGINE_WORKERS:
        if SMOKE:
            assert (budget["latency"]["mean"]
                    <= over["latency"]["mean"] * SMOKE_MEAN_SLACK)
        else:
            assert (budget["latency"]["p95"]
                    <= over["latency"]["p95"] * P95_SLACK)
