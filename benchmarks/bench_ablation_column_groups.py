"""Ablation — number of column groups g (thesis §5.4, closing remark).

The thesis: "increasing the number of column groups beyond two only
delivered a slight performance improvement (no more than 20%): the
total number of ancestors generated was smaller, but there was more
overhead due to multiple stages of computation."

Like Fig 5.6, grouping's payoff depends on LCA duplicate density, so
the 1/1000-scale SUSY is skewed — moderately here (Zipf 1.0): at this
density the g=1→2 step dominates, as in the thesis, while further
groups trade ever-smaller emission savings against extra stages.
"""

from repro.bench import print_table, run_variant
from bench_fig_5_6_fast_ancestor import skewed_susy

GROUP_COUNTS = (None, 2, 3, 4)


def run_group_sweep():
    table = skewed_susy(num_rows=900, skew=1.0)
    rows = []
    for groups in GROUP_COUNTS:
        result = run_variant(
            table, "baseline", k=3, sample_size=16, seed=3,
            num_column_groups=groups,
        )
        rows.append([
            "none" if groups is None else str(groups),
            result.rule_generation_seconds,
            result.ancestors_emitted,
            result.metrics["counters"]["stages"],
        ])
    return rows


def test_ablation_column_groups(once):
    rows = once(run_group_sweep)
    print_table(
        "Ablation — column group count (SUSY, d=18, skew 1.0)",
        ["groups", "rule generation (s)", "ancestors emitted", "stages"],
        rows,
        note="two groups give the big win; more groups emit fewer "
             "ancestors but add stage overhead (thesis: <=20% further)",
    )
    none, two, three, four = rows
    # Grouping reduces emissions versus single-stage.
    assert two[2] < none[2]
    # Further groups keep reducing emissions...
    assert four[2] <= three[2] <= two[2]
    # ...but no later step beats the single-stage -> two-group step.
    step_to_two = none[1] - two[1]
    step_beyond = two[1] - min(three[1], four[1])
    assert step_to_two > 0
    assert step_beyond < step_to_two