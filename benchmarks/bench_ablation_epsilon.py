"""Ablation — iterative-scaling threshold epsilon (thesis §2.2).

The thesis fixes epsilon = 0.01 throughout its evaluation.  This
ablation sweeps it: looser thresholds converge in fewer loop iterations
(cheaper scaling, especially for Baseline's per-loop passes over D) at
the price of slacker constraint satisfaction.
"""

import numpy as np

from repro.bench import dataset_by_name, print_table, run_variant

EPSILONS = (0.1, 0.01, 0.001)


def run_epsilon_sweep():
    table = dataset_by_name("gdelt", num_rows=2000)
    rows = []
    for epsilon in EPSILONS:
        result = run_variant(
            table, "baseline", k=6, sample_size=32, seed=3,
            epsilon=epsilon,
        )
        worst = 0.0
        for mined in result.rule_set:
            mask = mined.rule.match_mask(table)
            target = float(table.measure[mask].mean())
            estimate = float(np.asarray(result.estimates)[mask].mean())
            if target != 0:
                worst = max(worst, abs(target - estimate) / abs(target))
        rows.append([
            epsilon,
            result.scaling_iterations,
            result.iterative_scaling_seconds,
            worst,
        ])
    return rows


def test_ablation_epsilon(once):
    rows = once(run_epsilon_sweep)
    print_table(
        "Ablation — scaling threshold epsilon (GDELT, k=6)",
        ["epsilon", "scaling iterations", "scaling time (s)",
         "worst constraint error"],
        rows,
        note="tighter epsilon costs more scaling loops and buys tighter "
             "constraint satisfaction; the thesis uses 0.01",
    )
    loose, default, tight = rows
    assert loose[1] <= default[1] <= tight[1]
    assert tight[3] <= loose[3] + 1e-9
    # Constraint error is bounded by (roughly) the threshold used.
    for epsilon, _iters, _secs, worst in rows:
        assert worst <= epsilon * 3
