"""Figure 5.15 — Data cube exploration vs prior work (GDELT, k=10).

Paper: for the cube-exploration application (prior knowledge = the two
lowest-cardinality group-bys, no candidate pruning), Optimized SIRUM is
~10x faster than the Baseline configured as prior work [29] — whose
iterative scaling resets every multiplier when a rule is added — and
Optimized* (matching Baseline's information gain) is ~6x faster.
"""

from repro.apps import group_by_rules, lowest_cardinality_dimensions
from repro.bench import dataset_by_name, make_cluster, print_table
from repro.core.config import variant_config
from repro.core.miner import Sirum


def run_exploration():
    table = dataset_by_name("gdelt", num_rows=1500)
    prior = []
    for name in lowest_cardinality_dimensions(table, 2):
        prior.extend(group_by_rules(table, name))

    def explore(variant, **overrides):
        config = variant_config(
            variant, k=6, exhaustive=True, seed=3, **overrides
        )
        cluster = make_cluster()
        result = Sirum(config).mine(table, cluster=cluster,
                                    prior_rules=prior)
        return result

    # Baseline-as-prior-work: lambdas reset from scratch on every rule
    # addition ([29]'s procedure, thesis §5.6.2).
    baseline = explore("baseline", reset_lambdas=True)
    # Optimized keeps RCT scaling + multi-rule (pruning stays off to
    # match the experiment's setting).
    optimized = explore("optimized", use_fast_pruning=False)
    optimized_star = explore(
        "optimized", use_fast_pruning=False,
        target_kl=baseline.final_kl, max_rules=18,
    )
    rows = []
    for label, result in [("baseline [29]", baseline),
                          ("optimized", optimized),
                          ("optimized*", optimized_star)]:
        rows.append([
            label,
            result.phase_seconds("ancestor_generation")
            + result.phase_seconds("gain"),
            result.iterative_scaling_seconds,
            result.simulated_seconds,
        ])
    return rows


def test_fig_5_15(once):
    rows = once(run_exploration)
    print_table(
        "Fig 5.15 — Data cube exploration (GDELT, prior group-bys)",
        ["variant", "rule exploration (s)", "iterative scaling (s)",
         "total (s)"],
        rows,
        note="thesis: ~10x for optimized, ~6x for optimized*; the "
             "baseline's lambda-resetting scaling dominates its runtime",
    )
    baseline, optimized, optimized_star = rows
    # The [29]-style baseline is dominated by iterative scaling.
    assert baseline[2] > baseline[1]
    assert optimized[3] < baseline[3] / 2
    assert optimized_star[3] < baseline[3]
