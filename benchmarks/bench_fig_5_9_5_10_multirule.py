"""Figures 5.9/5.10 — Multi-rule SIRUM (GDELT, SUSY).

Paper: selecting two disjoint rules per iteration roughly halves
rule-generation time; three rules adds little over two; and the
*-variants (run until they match Baseline's KL-divergence) need extra
rules, giving back part of the speedup.
"""

from repro.bench import dataset_by_name, print_table, run_variant

K_VALUES = (10, 20)


def run_multirule(dataset, num_rows, sample_size):
    table = dataset_by_name(dataset, num_rows=num_rows)
    rows = []
    for k in K_VALUES:
        base = run_variant(table, "baseline", k=k,
                           sample_size=sample_size, seed=3)
        two = run_variant(table, "multirule", k=k,
                          sample_size=sample_size, seed=3)
        two_star = run_variant(
            table, "multirule", k=k, sample_size=sample_size, seed=3,
            target_kl=base.final_kl, max_rules=3 * k,
        )
        three = run_variant(
            table, "multirule", k=k, sample_size=sample_size, seed=3,
            rules_per_iteration=3,
        )
        three_star = run_variant(
            table, "multirule", k=k, sample_size=sample_size, seed=3,
            rules_per_iteration=3, target_kl=base.final_kl,
            max_rules=3 * k,
        )
        rows.append([
            k,
            base.rule_generation_seconds,
            two.rule_generation_seconds,
            two_star.rule_generation_seconds,
            three.rule_generation_seconds,
            three_star.rule_generation_seconds,
            len(two_star.rule_set) - 1,
        ])
    return rows


HEADERS = ["k", "baseline (s)", "2-rule (s)", "2-rule* (s)",
           "3-rule (s)", "3-rule* (s)", "2-rule* rules"]


def _check(rows, k_values):
    for row, k in zip(rows, k_values):
        base, two, two_star, three, _three_star = row[1:6]
        assert two < base                   # 2-rule saves rule-gen time
        assert two_star >= two              # * needs extra rules
        assert three <= two * 1.25          # 3-rule at most marginal
        assert row[6] >= k                  # * may exceed k rules


def test_fig_5_9_gdelt(once):
    rows = once(lambda: run_multirule("gdelt", 1500, 64))
    print_table(
        "Fig 5.9 — Multi-rule SIRUM rule generation (GDELT)",
        HEADERS, rows,
        note="2-rule ~halves rule generation; 3-rule marginal; "
             "*-variants give some back",
    )
    _check(rows, K_VALUES)


def test_fig_5_10_susy(once):
    rows = once(lambda: run_multirule("susy", 700, 8))
    print_table(
        "Fig 5.10 — Multi-rule SIRUM rule generation (SUSY)",
        HEADERS, rows,
        note="same shape as GDELT; *-variants need even more extra rules",
    )
    _check(rows, K_VALUES)
