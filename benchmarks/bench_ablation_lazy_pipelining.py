"""Ablation — lazy pipelined stages vs eager per-op stages.

Spark's lineage-based lazy evaluation (the platform property §2.6.3
credits for SIRUM's iterative performance) fuses chains of narrow
transformations into single stages.  This ablation runs the same
LCA-flavoured dataflow through the eager layer (one metered stage per
transformation) and the lazy DAG scheduler (pipelined), and reports the
simulated-time gap.
"""

from repro.bench import make_cluster, print_table
from repro.data.generators import gdelt_table
from repro.engine.lazy import LazyRDD
from repro.engine.rdd import RDD

ROWS = 3000
PARTITIONS = 16


def build_dataflow(rdd_cls, ctx, pairs, sample):
    """A SIRUM-like narrow chain: join sample, LCA, project, filter."""
    rdd = rdd_cls.parallelize(ctx, pairs, PARTITIONS)
    joined = rdd.broadcast_join(sample)
    lcas = joined.map(
        lambda kv: tuple(
            a if a == b else -1 for a, b in zip(kv[1][0], kv[1][1])
        )
    )
    return lcas.filter(lambda lca: any(v != -1 for v in lca))


def run_comparison():
    table = gdelt_table(num_rows=ROWS)
    pairs = [
        (i % 64, table.encoded_row(i)) for i in range(len(table))
    ]
    sample = {i: table.encoded_row(i * 7 % len(table)) for i in range(64)}

    eager_ctx = make_cluster()
    build_dataflow(RDD, eager_ctx, pairs, sample).collect()
    eager = eager_ctx.metrics.simulated_seconds
    eager_stages = eager_ctx.metrics.counter("stages")

    lazy_ctx = make_cluster()
    build_dataflow(LazyRDD, lazy_ctx, pairs, sample).collect()
    lazy = lazy_ctx.metrics.simulated_seconds
    lazy_stages = lazy_ctx.metrics.counter("stages")

    return [
        ["eager (stage per op)", eager_stages, eager],
        ["lazy (pipelined)", lazy_stages, lazy],
        ["speedup", "-", eager / lazy],
    ]


def test_ablation_lazy_pipelining(once):
    rows = once(run_comparison)
    print_table(
        "Ablation — pipelined lazy stages vs eager per-op stages",
        ["execution model", "stages", "simulated seconds"],
        rows,
        note="pipelining touches each record once per stage, not once "
             "per transformation",
    )
    eager_stages, eager_seconds = rows[0][1], rows[0][2]
    lazy_stages, lazy_seconds = rows[1][1], rows[1][2]
    assert lazy_stages < eager_stages
    assert lazy_seconds < eager_seconds
    # Results identical is asserted inside the run (same collect).
    assert rows[2][2] > 1.5  # fusing 3 narrow ops saves >= ~1.5x here
