"""Figure 4.3 — Memory usage over time under two memory allocations.

Paper: SIRUM on Income with 5GB of executor memory caches the whole
input and stops reading HDFS after the first load; with 3GB, partitions
are continuously evicted and re-read, roughly doubling the runtime.
"""

from repro.bench import dataset_by_name, make_cluster, print_table, run_variant

ROOMY_BYTES = 4 * 1024 * 1024
TIGHT_BYTES = 48 * 1024


def run_memory_profile():
    table = dataset_by_name("income", num_rows=4000)
    out = {}
    for label, memory in [("roomy", ROOMY_BYTES), ("tight", TIGHT_BYTES)]:
        cluster = make_cluster(
            num_executors=1, cores_per_executor=8,
            executor_memory_bytes=memory,
        )
        result = run_variant(
            table, "baseline", cluster=cluster, k=6, sample_size=32, seed=3
        )
        timeline = cluster.metrics.memory_timeline
        out[label] = {
            "seconds": result.simulated_seconds,
            "disk_bytes": result.metrics["counters"]["disk_read_bytes"],
            "peak_cached": max(b for _, b in timeline) if timeline else 0,
            "timeline": timeline,
        }
    return out


def test_fig_4_3(once):
    out = once(run_memory_profile)
    rows = [
        [label, data["seconds"], data["peak_cached"], data["disk_bytes"]]
        for label, data in out.items()
    ]
    print_table(
        "Fig 4.3 — Memory allocations: roomy vs tight executor memory",
        ["allocation", "total (s)", "peak cached (bytes)",
         "disk read (bytes)"],
        rows,
        note="tight memory evicts partitions and re-reads them from "
             "disk on every pass, inflating runtime (thesis: ~2x)",
    )
    # Sampled memory timeline (the figure's x/y series), a few points.
    for label in ("roomy", "tight"):
        timeline = out[label]["timeline"]
        step = max(1, len(timeline) // 8)
        series = "  ".join(
            "(%.1fs, %dB)" % (t, b) for t, b in timeline[::step]
        )
        print("%s timeline: %s" % (label, series))
    roomy, tight = out["roomy"], out["tight"]
    assert tight["seconds"] > roomy["seconds"]
    assert tight["disk_bytes"] > roomy["disk_bytes"]
    assert tight["peak_cached"] < roomy["peak_cached"]


if __name__ == "__main__":
    import json

    print(json.dumps({
        k: {kk: vv for kk, vv in v.items() if kk != "timeline"}
        for k, v in run_memory_profile().items()
    }, indent=2))
