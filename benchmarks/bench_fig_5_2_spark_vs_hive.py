"""Figure 5.2 — Baseline SIRUM on Spark vs Hive (full cluster).

Paper: on TLC_160m with the whole cluster, Hive-on-MapReduce is an
order of magnitude slower: every stage is a MapReduce job with slow
task launch/cleanup, and intermediate results are materialized to
replicated HDFS and read back.
"""

from repro.bench import dataset_by_name, print_table
from repro.platforms import run_baseline_sirum


def run_platforms():
    table = dataset_by_name("tlc", num_rows=8000)
    rows = []
    for platform in ("spark", "hive"):
        result, _cluster = run_baseline_sirum(
            platform, table, k=4, sample_size=16, num_executors=8, seed=0
        )
        rows.append([platform, result.simulated_seconds])
    return rows


def test_fig_5_2(once):
    rows = once(run_platforms)
    ratio = rows[1][1] / rows[0][1]
    print_table(
        "Fig 5.2 — Baseline SIRUM: Spark vs Hive (cluster, TLC sample)",
        ["platform", "execution time (s)"],
        rows + [["hive/spark ratio", ratio]],
        note="thesis: Hive an order of magnitude slower (job launch + "
             "HDFS materialization of intermediates)",
    )
    assert ratio > 3.0
