"""Ablation — cube-computation algorithm economics (thesis Chapter 6).

The thesis's candidate generation is a data-cube computation and its
related work weighs hash-based computation from smaller parents [3],
sort-based sharing [22] and pruned (iceberg) cubes.  This ablation
quantifies those trade-offs on a SUSY-shaped table: tuples read and
passes per algorithm, plus how iceberg pruning shrinks the result.
"""

from repro.cube import buc_cube, hash_cube, naive_cube, sort_cube
from repro.data.generators import susy_table
from repro.bench import print_table

DIMS = 8
ROWS = 600


def run_algorithms():
    table = susy_table(num_rows=ROWS, num_dimensions=DIMS, seed=17)
    out = []
    reference = None
    for name, algorithm in [
        ("naive", naive_cube),
        ("hash (smallest parent)", hash_cube),
        ("sort (pipe-sort)", sort_cube),
        ("BUC (support=1)", buc_cube),
    ]:
        stats = {}
        cube = algorithm(table, stats=stats)
        if reference is None:
            reference = cube
        assert cube == reference, "%s disagrees with naive" % name
        out.append(
            [
                name,
                stats.get("tuples_read", 0),
                stats.get("passes", stats.get("partitions", 0)),
                cube.num_groups(),
            ]
        )
    iceberg_stats = {}
    iceberg = buc_cube(table, min_support=10, stats=iceberg_stats)
    out.append(
        [
            "BUC (support=10)",
            iceberg_stats["tuples_read"],
            iceberg_stats["partitions"],
            iceberg.num_groups(),
        ]
    )
    return out


def test_ablation_cube_algorithms(once):
    rows = once(run_algorithms)
    print_table(
        "Ablation — cube computation algorithms (SUSY d=%d, %d rows)"
        % (DIMS, ROWS),
        ["algorithm", "tuples read", "passes/partitions", "groups"],
        rows,
        note="hash reads fewer tuples than naive by reusing parents; "
             "iceberg pruning collapses both work and output",
    )
    by_name = {row[0]: row for row in rows}
    naive_reads = by_name["naive"][1]
    hash_reads = by_name["hash (smallest parent)"][1]
    assert hash_reads < naive_reads
    # Iceberg pruning reads less and emits far fewer groups than the
    # full BUC run.
    assert by_name["BUC (support=10)"][1] < by_name["BUC (support=1)"][1]
    assert by_name["BUC (support=10)"][3] < by_name["BUC (support=1)"][3] / 2
