"""Figures 5.3/5.4 — RCT iterative-scaling speedup vs k (GDELT, SUSY).

Paper: RCT SIRUM's iterative scaling is four to five times faster than
Baseline on both datasets across k in {10, 20, 50}: the Rule Coverage
Table needs two passes over D total instead of two per scaling loop.
This reproduction reaches ~3-4x — our synthetic measures couple rules a
little less than the real data, so scaling converges in fewer loops
(see EXPERIMENTS.md).
"""

from repro.bench import dataset_by_name, print_table, run_variant

K_VALUES = (10, 20, 50)


def run_rct(dataset, num_rows, sample_size):
    table = dataset_by_name(dataset, num_rows=num_rows)
    rows = []
    for k in K_VALUES:
        base = run_variant(table, "baseline", k=k,
                           sample_size=sample_size, seed=3)
        rct = run_variant(table, "rct", k=k,
                          sample_size=sample_size, seed=3)
        rows.append([
            k,
            base.iterative_scaling_seconds,
            rct.iterative_scaling_seconds,
            base.iterative_scaling_seconds / rct.iterative_scaling_seconds,
        ])
    return rows


def _check(rows):
    for _k, base, rct, ratio in rows:
        assert rct < base
        assert ratio > 1.5


def test_fig_5_3_gdelt(once):
    rows = once(lambda: run_rct("gdelt", 1500, 64))
    print_table(
        "Fig 5.3 — RCT iterative-scaling speedup (GDELT)",
        ["k", "baseline scaling (s)", "RCT scaling (s)", "speedup"],
        rows,
        note="thesis: 4-5x across k; here ~3-4x (fewer scaling loops "
             "on synthetic data)",
    )
    _check(rows)


def test_fig_5_4_susy(once):
    rows = once(lambda: run_rct("susy", 700, 8))
    print_table(
        "Fig 5.4 — RCT iterative-scaling speedup (SUSY)",
        ["k", "baseline scaling (s)", "RCT scaling (s)", "speedup"],
        rows,
        note="thesis: 4-5x across k",
    )
    _check(rows)
