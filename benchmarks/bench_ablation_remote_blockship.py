"""Ablation — remote block shipping: cold fetch vs warm cache.

Shared-nothing remote execution means a :class:`ShardWorker` started
with ``local_files=False`` never touches its own filesystem: every
colfile block its shards read arrives over the driver connection
(``block_fetch``) and lands in the worker's bounded LRU block cache
(:mod:`repro.net.worker`).  This ablation prices that wire leg by
mining the same file-backed table remotely under two cache regimes:

- **cold** — a fresh worker per run, so every block read is a wire
  fetch;
- **warm** — one worker reused across runs, so after a warm-up pass
  every read is a cache hit and *zero* bytes cross the wire.

Reported per arm: job-latency mean/p50/p95, total blocks and bytes
shipped (driver-side counters, cross-checked against the worker's
``worker_block_cache_*`` metrics), and the bit-identity check against
a serial in-RAM run — shipping moves bytes, it must never change
results.  The JSON line (``REMOTE_JSON``) carries the measured
numbers.

Set ``REPRO_BENCH_SMOKE=1`` (CI's bench-smoke job) to shrink the
workload: the JSON line and correctness/shipping assertions stay, only
the sizes drop.
"""

import os
from time import perf_counter

from repro.bench import (
    bench_smoke_enabled,
    dataset_by_name,
    json_result_line,
    latency_summary,
    print_table,
)
from repro.core.config import variant_config
from repro.core.miner import Sirum, make_default_cluster
from repro.data.colfile import write_colfile
from repro.data.table import Table
from repro.net.worker import ShardWorker

SMOKE = bench_smoke_enabled()

DATASET = "income"
ROWS = 1200 if SMOKE else 4800
BLOCK_ROWS = 64
SAMPLES = 3 if SMOKE else 8
#: Warm reads must beat cold fetches on average; generous slack keeps
#: the gate honest on noisy shared CI hosts — the *hard* gate is the
#: byte counters, which are deterministic.
WARM_MEAN_SLACK = 1.25


def _mine_once(table, worker_address=None):
    """One mining job; returns (result, seconds, placement stats)."""
    kwargs = {}
    if worker_address is not None:
        kwargs.update(executor="remote", workers=[worker_address])
    else:
        kwargs.update(parallelism=1)
    cluster = make_default_cluster(
        num_executors=2, cores_per_executor=2, **kwargs
    )
    try:
        config = variant_config("optimized", k=3, sample_size=16, seed=0)
        started = perf_counter()
        result = Sirum(config).mine(table, cluster=cluster)
        elapsed = perf_counter() - started
        return result, elapsed, cluster.placement_stats()
    finally:
        cluster.close()


def _result_key(result):
    return (
        [tuple(m.rule.values) for m in result.rule_set],
        result.lambdas.tobytes(),
        result.kl_trace,
    )


def run_comparison(workdir):
    table_ram = dataset_by_name(DATASET, num_rows=ROWS)
    path = os.path.join(workdir, "blockship.col")
    write_colfile(table_ram, path, block_rows=BLOCK_ROWS)
    file_table = Table.open_colfile(path)

    serial, _, _ = _mine_once(table_ram)
    reference = _result_key(serial)

    cold_latencies, cold_blocks, cold_bytes = [], 0, 0
    cold_identical = True
    for _ in range(SAMPLES):
        # A fresh worker per sample: its block cache starts empty, so
        # every block read is a wire fetch.
        with ShardWorker(local_files=False) as worker:
            result, seconds, pstats = _mine_once(
                file_table, worker_address=worker.address
            )
            wstats = worker.stats()
        cold_latencies.append(seconds)
        cold_blocks += pstats["blocks_shipped"]
        cold_bytes += pstats["bytes_shipped"]
        cold_identical &= _result_key(result) == reference
        # Driver-side shipped bytes and worker-side fetched bytes are
        # two ends of the same wire.
        assert wstats["block_cache"]["fetched_bytes"] == pstats["bytes_shipped"]

    warm_latencies, warm_blocks, warm_bytes = [], 0, 0
    warm_identical = True
    with ShardWorker(local_files=False) as worker:
        # Warm-up pass populates the worker's block cache (untimed).
        _mine_once(file_table, worker_address=worker.address)
        for _ in range(SAMPLES):
            result, seconds, pstats = _mine_once(
                file_table, worker_address=worker.address
            )
            warm_latencies.append(seconds)
            warm_blocks += pstats["blocks_shipped"]
            warm_bytes += pstats["bytes_shipped"]
            warm_identical &= _result_key(result) == reference
        warm_cache = worker.stats()["block_cache"]

    return {
        "cold": {
            "latency": latency_summary(cold_latencies),
            "blocks_shipped": cold_blocks,
            "bytes_shipped": cold_bytes,
            "identical": cold_identical,
        },
        "warm": {
            "latency": latency_summary(warm_latencies),
            "blocks_shipped": warm_blocks,
            "bytes_shipped": warm_bytes,
            "identical": warm_identical,
            "cache": warm_cache,
        },
    }


def test_ablation_remote_blockship(once, tmp_path):
    out = once(lambda: run_comparison(str(tmp_path)))
    cold, warm = out["cold"], out["warm"]
    print_table(
        "Ablation — remote block shipping: cold fetch vs warm cache "
        "(%d rows, %d-row blocks, %d samples/arm)" % (
            ROWS, BLOCK_ROWS, SAMPLES,
        ),
        ["arm", "mean latency", "p50", "p95", "blocks shipped",
         "bytes shipped"],
        [
            ["cold", cold["latency"]["mean"], cold["latency"]["p50"],
             cold["latency"]["p95"], cold["blocks_shipped"],
             cold["bytes_shipped"]],
            ["warm", warm["latency"]["mean"], warm["latency"]["p50"],
             warm["latency"]["p95"], warm["blocks_shipped"],
             warm["bytes_shipped"]],
        ],
        note="identical results: %s; warm cache: %d hits, %d misses" % (
            cold["identical"] and warm["identical"],
            warm["cache"]["hits"], warm["cache"]["misses"],
        ),
    )
    print(json_result_line("REMOTE_JSON", {
        "rows": ROWS,
        "block_rows": BLOCK_ROWS,
        "samples": SAMPLES,
        "smoke": SMOKE,
        "cold_latency": cold["latency"],
        "warm_latency": warm["latency"],
        "cold_blocks_shipped": cold["blocks_shipped"],
        "cold_bytes_shipped": cold["bytes_shipped"],
        "warm_blocks_shipped": warm["blocks_shipped"],
        "warm_bytes_shipped": warm["bytes_shipped"],
        "warm_cache_hits": warm["cache"]["hits"],
        "bit_identical": cold["identical"] and warm["identical"],
    }))
    # Shipping moves bytes; it must never change results.
    assert cold["identical"] and warm["identical"]
    # Cold workers really fetched over the wire, every sample.
    assert cold["blocks_shipped"] >= SAMPLES
    assert cold["bytes_shipped"] > 0
    # The warm worker's cache absorbed every read: nothing crossed the
    # wire after warm-up, and the hits are visible worker-side.
    assert warm["blocks_shipped"] == 0
    assert warm["bytes_shipped"] == 0
    assert warm["cache"]["hits"] > 0
    # Skipping the wire leg must not cost latency.
    assert (warm["latency"]["mean"]
            <= cold["latency"]["mean"] * WARM_MEAN_SLACK)
