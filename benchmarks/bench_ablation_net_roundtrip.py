"""Ablation — the network front door's round-trip overhead.

The framed TCP protocol (:mod:`repro.net`) puts a socket, JSON codec
and the server's asyncio loop between the client and the service
façade.  This ablation prices that: the same cache-primed mining
request and a small SQL query are issued (a) in-process through
:class:`~repro.service.RuleMiningService` and (b) over the wire
through :class:`~repro.net.ServiceClient` against a localhost
:class:`~repro.net.ServiceServer`, and the per-request p50/p95
latencies are compared.  Cache-primed requests isolate the wire cost —
both paths serve the identical cached result, so the delta is pure
protocol overhead (framing, JSON, syscalls, loop hops).

Results must be bit-identical across paths.  Emits a machine-readable
``NET_JSON`` line with the round-trip numbers.  Set
``REPRO_BENCH_SMOKE=1`` (CI's bench-smoke job) to shrink the iteration
count; the JSON line and the correctness/overhead assertions stay.
"""

import time

import numpy as np

from repro.bench import (
    bench_smoke_enabled,
    dataset_by_name,
    json_result_line,
    latency_summary,
    print_table,
)
from repro.net import NetConfig, ServiceClient, ServiceServer
from repro.service import RuleMiningService, ServiceConfig

SMOKE = bench_smoke_enabled()

ROWS = 800 if SMOKE else 2000
ITERATIONS = 40 if SMOKE else 200
DATASET = "income"
MINE = {"k": 3, "variant": "optimized", "sample_size": 16, "seed": 0}
SQL = "SELECT COUNT(*) FROM income"

#: Localhost round trips through a cache hit should land far under
#: this; the bound only guards against pathological regressions (a
#: blocking loop, a lost-wakeup poll) while staying slack enough for
#: loaded CI machines.
MAX_WIRE_P95_SECONDS = 0.5


def _time(fn, iterations):
    latencies = []
    for _ in range(iterations):
        started = time.perf_counter()
        fn()
        latencies.append(time.perf_counter() - started)
    return latency_summary(latencies)


def run_roundtrips():
    table = dataset_by_name(DATASET, num_rows=ROWS)
    service = RuleMiningService(ServiceConfig(num_workers=2))
    server = None
    client = None
    try:
        service.register_dataset(DATASET, table)
        server = ServiceServer(service, NetConfig(port=0))
        server.start()
        client = ServiceClient("127.0.0.1", server.port)

        # Prime the cache: every timed request below is a cache hit,
        # so in-process vs wire differ only by the protocol.
        reference = service.mine(DATASET, **MINE)
        remote = client.mine(DATASET, **MINE)
        identical = (
            [tuple(m.rule.values) for m in reference.rule_set]
            == [tuple(m.rule.values) for m in remote.rule_set]
            and np.array_equal(reference.lambdas, remote.lambdas)
            and np.array_equal(reference.estimates, remote.estimates)
        )
        service.query(SQL)

        inproc_mine = _time(lambda: service.mine(DATASET, **MINE),
                            ITERATIONS)
        wire_mine = _time(lambda: client.mine(DATASET, **MINE),
                          ITERATIONS)
        inproc_sql = _time(lambda: service.query(SQL), ITERATIONS)
        wire_sql = _time(lambda: client.query(SQL), ITERATIONS)
        frames = client.stats()["net"]
    finally:
        if client is not None:
            client.close()
        if server is not None:
            server.stop()
        service.close()
    return {
        "identical": identical,
        "inproc_mine": inproc_mine,
        "wire_mine": wire_mine,
        "inproc_sql": inproc_sql,
        "wire_sql": wire_sql,
        "frames_in": frames["frames_in"],
        "frames_out": frames["frames_out"],
    }


def test_ablation_net_roundtrip(once):
    out = once(run_roundtrips)
    overhead_p50 = out["wire_mine"]["p50"] - out["inproc_mine"]["p50"]
    print_table(
        "Ablation — wire round trip vs in-process (cache-primed)",
        ["path", "p50 seconds", "p95 seconds"],
        [
            ["mine, in-process", out["inproc_mine"]["p50"],
             out["inproc_mine"]["p95"]],
            ["mine, over wire", out["wire_mine"]["p50"],
             out["wire_mine"]["p95"]],
            ["sql, in-process", out["inproc_sql"]["p50"],
             out["inproc_sql"]["p95"]],
            ["sql, over wire", out["wire_sql"]["p50"],
             out["wire_sql"]["p95"]],
        ],
        note="wire overhead p50 %.3gms over %d iterations; "
             "%d frames in / %d out" % (
                 overhead_p50 * 1e3, ITERATIONS,
                 out["frames_in"], out["frames_out"],
             ),
    )
    print(json_result_line("NET_JSON", {
        "iterations": ITERATIONS,
        "smoke": SMOKE,
        "mine_inproc": out["inproc_mine"],
        "mine_wire": out["wire_mine"],
        "sql_inproc": out["inproc_sql"],
        "sql_wire": out["wire_sql"],
        "overhead_p50_seconds": overhead_p50,
        "frames_in": out["frames_in"],
        "frames_out": out["frames_out"],
    }))
    assert out["identical"], "wire results diverged from in-process"
    assert out["wire_mine"]["p95"] < MAX_WIRE_P95_SECONDS
    assert out["wire_sql"]["p95"] < MAX_WIRE_P95_SECONDS
