"""Ablation — speculative execution against stragglers (thesis §5.7.2).

The weak-scaling experiment (Fig 5.17) attributes its deviation from
the ideal flat line to stragglers, and the thesis remarks the problem
"could be mitigated with the help of speculative execution or full
cloning of small jobs [5]".  This ablation runs the Fig 5.17 workload
with straggling executors, with and without speculative task cloning,
and reports how much of the straggler penalty cloning recovers.
"""

from repro.bench import dataset_by_name, print_table, run_variant
from repro.engine.cluster import ClusterContext
from repro.engine.cost import ClusterSpec, CostModel

EXECUTORS = 8
ROWS = 8000
SIGMA = 0.6  # heavy straggling so the mitigation is visible


def cluster_with(speculative, sigma=SIGMA):
    spec = ClusterSpec(
        num_executors=EXECUTORS,
        cores_per_executor=8,
        executor_memory_bytes=256 * 1024**2,
        straggler_sigma=sigma,
        seed=7,
        speculative_execution=speculative,
    )
    return ClusterContext(spec, CostModel())


def run_comparison():
    table = dataset_by_name("tlc", num_rows=ROWS)
    no_stragglers = run_variant(
        table, "optimized", cluster=cluster_with(False, sigma=0.0),
        k=5, sample_size=16, seed=3,
    )
    plain = run_variant(
        table, "optimized", cluster=cluster_with(False),
        k=5, sample_size=16, seed=3,
    )
    speculative_cluster = cluster_with(True)
    speculative = run_variant(
        table, "optimized", cluster=speculative_cluster,
        k=5, sample_size=16, seed=3,
    )
    clones = speculative_cluster.metrics.counter("speculative_clones")
    return {
        "ideal": no_stragglers.simulated_seconds,
        "plain": plain.simulated_seconds,
        "speculative": speculative.simulated_seconds,
        "clones": clones,
        "kl": (plain.final_kl, speculative.final_kl),
    }


def test_ablation_speculative(once):
    out = once(run_comparison)
    penalty = out["plain"] - out["ideal"]
    recovered = out["plain"] - out["speculative"]
    print_table(
        "Ablation — speculative execution under stragglers (sigma=%.1f)"
        % SIGMA,
        ["configuration", "time (s)"],
        [
            ["no stragglers (ideal)", out["ideal"]],
            ["stragglers, no mitigation", out["plain"]],
            ["stragglers + speculative clones (%d)" % out["clones"],
             out["speculative"]],
            ["straggler penalty recovered",
             recovered / penalty if penalty > 0 else float("nan")],
        ],
        note="thesis §5.7.2: speculative execution should mitigate the "
             "weak-scaling straggler penalty",
    )
    assert out["kl"][0] == out["kl"][1]      # mitigation never changes results
    assert out["plain"] > out["ideal"]        # stragglers do hurt
    assert out["speculative"] < out["plain"]  # cloning helps
    assert out["clones"] > 0
    # Cloning recovers a meaningful share of the penalty.
    assert recovered > 0.25 * penalty
