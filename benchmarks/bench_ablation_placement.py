"""Ablation — placed shard execution vs the shared (unplaced) pool.

Placed execution turns the worker pool into an addressable topology:
shard i runs on the worker pinned to slot ``i % workers`` every stage,
so a worker sees the same rows stage after stage and its caches stay
hot (:mod:`repro.engine.placement`).  This ablation drives a burst of
*distinct* concurrent mining jobs — each a multi-stage pipeline whose
every stage repartitions the same shards — through the mining service
twice: once with placed clusters, once on the shared unplaced pool,
with identical worker counts either way.

Reported per arm: request-latency p50/p95, wall seconds and the
service's ``stats()["placement"]`` counters — the placed arm must pin
every stage (``unplaced_stages == 0``) and convert repeat shard visits
into affinity hits, and both arms must return bit-identical results
(the placement layer routes work, it never changes it).  The JSON line
(``PLACEMENT_JSON``) carries the measured numbers.

Set ``REPRO_BENCH_SMOKE=1`` (CI's bench-smoke job) to shrink the
workload: the JSON line and correctness/affinity assertions stay, only
the sizes drop.
"""

from repro.bench import (
    bench_smoke_enabled,
    build_mining_burst_workload,
    dataset_by_name,
    json_result_line,
    latency_summary,
    print_table,
    run_service_workload,
    service_results_match,
)
from repro.core.miner import make_default_cluster
from repro.service import RuleMiningService, ServiceConfig

SMOKE = bench_smoke_enabled()

DATASET = "income"
ROWS = 1500 if SMOKE else 6000
BURST_JOBS = 4 if SMOKE else 8
#: Workers per job == partitions per job, so the placed arm's every
#: stage can pin each shard to its own worker.
ENGINE_PARALLELISM = 4
#: Slack on the latency gate: placement must not cost tail latency.
#: Both arms race the same OS scheduler; smoke sizes are noisier and
#: p95 over few samples is the max, so smoke compares means instead.
P95_SLACK = 1.25
SMOKE_MEAN_SLACK = 1.50


def _cluster_factory(placed):
    """A service cluster factory with placement explicitly pinned."""

    def factory():
        return make_default_cluster(
            parallelism=ENGINE_PARALLELISM, placed=placed,
        )

    return factory


def run_arm(placed):
    """The distinct-jobs burst with placement on or off."""
    table = dataset_by_name(DATASET, num_rows=ROWS)
    requests = build_mining_burst_workload(
        num_requests=BURST_JOBS, k=3, sample_size=16
    )
    # Every request pins num_partitions to the worker count, so placed
    # clusters place every stage instead of degrading.
    requests = [
        (kind, dict(payload, num_partitions=ENGINE_PARALLELISM))
        for kind, payload in requests
    ]
    service = RuleMiningService(
        ServiceConfig(num_workers=BURST_JOBS, admission="oversubscribe"),
        make_cluster=_cluster_factory(placed),
    )
    try:
        service.register_dataset(DATASET, table)
        run = run_service_workload(
            service, DATASET, requests, num_clients=BURST_JOBS
        )
        stats = service.stats()
    finally:
        service.close()
    return {
        "results": run["results"],
        "wall_seconds": run["wall_seconds"],
        "latency": latency_summary(run["latencies"]),
        "placement": stats["placement"],
    }


def run_comparison():
    unplaced = run_arm(placed=False)
    placed = run_arm(placed=True)
    return {
        "unplaced": unplaced,
        "placed": placed,
        "results_match": service_results_match(
            unplaced["results"], placed["results"]
        ),
    }


def test_ablation_placement(once):
    out = once(run_comparison)
    placed, unplaced = out["placed"], out["unplaced"]
    hit_rate = placed["placement"]["affinity_hit_rate"]
    print_table(
        "Ablation — placed shards vs shared pool "
        "(%d jobs x %d workers, %d shards each)" % (
            BURST_JOBS, ENGINE_PARALLELISM, ENGINE_PARALLELISM,
        ),
        ["arm", "wall seconds", "p50 latency", "p95 latency",
         "affinity hit rate"],
        [
            ["unplaced", unplaced["wall_seconds"],
             unplaced["latency"]["p50"], unplaced["latency"]["p95"],
             unplaced["placement"]["affinity_hit_rate"]],
            ["placed", placed["wall_seconds"],
             placed["latency"]["p50"], placed["latency"]["p95"], hit_rate],
        ],
        note="identical results: %s; placed arm pinned %d stages "
             "(%d unplaced), %d affinity hits / %d misses" % (
                 out["results_match"],
                 placed["placement"]["placed_stages"],
                 placed["placement"]["unplaced_stages"],
                 placed["placement"]["affinity_hits"],
                 placed["placement"]["affinity_misses"],
             ),
    )
    print(json_result_line("PLACEMENT_JSON", {
        "jobs": BURST_JOBS,
        "engine_parallelism": ENGINE_PARALLELISM,
        "rows": ROWS,
        "smoke": SMOKE,
        "shards": ENGINE_PARALLELISM,
        "unplaced_wall_seconds": unplaced["wall_seconds"],
        "placed_wall_seconds": placed["wall_seconds"],
        "unplaced_latency": unplaced["latency"],
        "placed_latency": placed["latency"],
        "affinity_hit_rate": hit_rate,
        "placed_stages": placed["placement"]["placed_stages"],
        "unplaced_stages": placed["placement"]["unplaced_stages"],
        "rebalances": placed["placement"]["rebalances"],
        "bit_identical": out["results_match"],
    }))
    # Placement routes work; it must not change it.
    assert out["results_match"]
    # The placed arm really placed: every stage pinned, and repeat
    # shard visits became affinity hits (first touch per shard is the
    # only unavoidable miss).
    assert placed["placement"]["placed_stages"] > 0
    assert placed["placement"]["unplaced_stages"] == 0
    assert hit_rate >= 0.5
    # The unplaced arm never placed anything.
    assert unplaced["placement"]["placed_stages"] == 0
    # Pinning must not cost tail latency against the shared pool.
    if SMOKE:
        assert (placed["latency"]["mean"]
                <= unplaced["latency"]["mean"] * SMOKE_MEAN_SLACK)
    else:
        assert (placed["latency"]["p95"]
                <= unplaced["latency"]["p95"] * P95_SLACK)
