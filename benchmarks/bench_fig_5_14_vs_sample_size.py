"""Figure 5.14 — Rule-mining improvement vs |s| (Income, SUSY).

Paper: Optimized SIRUM's end-to-end improvement over Baseline holds at
roughly 80% (a factor of five) across |s| in {64, 128, 256} on both
Income and SUSY.
"""

from repro.bench import dataset_by_name, print_table, run_variant


def run_vs_sample_size(dataset, num_rows, sample_sizes, k):
    table = dataset_by_name(dataset, num_rows=num_rows)
    rows = []
    for sample_size in sample_sizes:
        base = run_variant(table, "baseline", k=k,
                           sample_size=sample_size, seed=3)
        optimized = run_variant(table, "optimized", k=k,
                                sample_size=sample_size, seed=3)
        improvement = 100.0 * (
            1.0 - optimized.simulated_seconds / base.simulated_seconds
        )
        rows.append([dataset, sample_size, base.simulated_seconds,
                     optimized.simulated_seconds, improvement])
    return rows


def test_fig_5_14(once):
    def run_both():
        rows = run_vs_sample_size("income", 1800, (64, 128, 256), 10)
        rows += run_vs_sample_size("susy", 700, (4, 8, 16), 5)
        return rows

    rows = once(run_both)
    print_table(
        "Fig 5.14 — % improvement of Optimized over Baseline vs |s|",
        ["dataset", "|s|", "baseline (s)", "optimized (s)",
         "improvement %"],
        rows,
        note="thesis: ~80% (5x) across sample sizes on both datasets; "
             "here income matches (~75-80%) while SUSY's improvement "
             "shrinks with |s| (column grouping's between-stage dedup "
             "is starved at laptop scale — see EXPERIMENTS.md)",
    )
    improvements = [row[4] for row in rows]
    income = improvements[:3]
    susy = improvements[3:]
    # Income reproduces the thesis's flat ~80%.
    assert all(imp > 60 for imp in income)
    assert max(income) - min(income) < 25
    # SUSY improves everywhere, but decays with |s| at this scale.
    assert all(imp > 20 for imp in susy)
