"""Figures 5.7/5.8 — Rule generation and emitted ancestors vs d (SUSY).

Paper: as the number of dimension attributes grows from 10 to 18,
baseline rule-generation time and the number of ancestors emitted grow
(near-exponentially for emissions, Fig 5.8 is log-scale), and column
grouping's advantage widens with d.
"""

import math

from repro.bench import dataset_by_name, print_table, run_variant

DIMENSIONS = (10, 12, 14, 16, 18)


def run_dims():
    rows = []
    for d in DIMENSIONS:
        table = dataset_by_name("susy", num_rows=900, num_dimensions=d)
        base = run_variant(table, "baseline", k=3, sample_size=16, seed=3)
        fast = run_variant(table, "fastancestor", k=3, sample_size=16,
                           seed=3)
        rows.append([
            d,
            base.rule_generation_seconds,
            fast.rule_generation_seconds,
            base.ancestors_emitted,
            fast.ancestors_emitted,
            math.log10(max(base.ancestors_emitted, 1)),
            math.log10(max(fast.ancestors_emitted, 1)),
        ])
    return rows


def test_fig_5_7_5_8(once):
    rows = once(run_dims)
    print_table(
        "Fig 5.7/5.8 — Rule generation and emitted ancestors vs d (SUSY)",
        ["d", "baseline rule gen (s)", "fastancestor rule gen (s)",
         "baseline emitted", "fastancestor emitted",
         "log10 base emitted", "log10 fast emitted"],
        rows,
        note="emissions grow ~exponentially with d; column grouping "
             "emits fewer and its advantage widens",
    )
    base_emitted = [r[3] for r in rows]
    fast_emitted = [r[4] for r in rows]
    base_times = [r[1] for r in rows]
    # Fig 5.8 shape: emitted grows strictly with d, super-linearly.
    assert all(b2 > b1 for b1, b2 in zip(base_emitted, base_emitted[1:]))
    assert base_emitted[-1] / base_emitted[0] > 4
    # Fig 5.7 shape: rule-generation time grows with d.
    assert base_times[-1] > base_times[0]
    # Column grouping emits fewer pairs at every d.
    assert all(f < b for f, b in zip(fast_emitted, base_emitted))
