"""Figure 5.6 — Fast candidate rule processing vs |s| (SUSY, k=20).

Paper: column-grouped (two-group) ancestor generation cuts SUSY rule-
generation time by a factor of about 2.5 — senior ancestors are
generated once from merged (deduplicated) intermediates instead of once
per LCA instance.

Scaling note: the optimization's payoff is proportional to how often
LCA instances collide, which at the thesis's 5M-row scale is high.  At
1/1000 scale a uniform bucket distribution leaves collisions too rare
to matter, so this workload skews the 18 bucketed attributes (Zipf
exponent 2.0) to restore the cluster-scale duplicate density; k is
scaled to 2 to keep the d=18 candidate volume laptop-sized.
"""

from repro.bench import print_table, run_variant
from repro.data.generators.synthetic import SyntheticSpec, generate

SAMPLE_SIZES = (8, 16, 32)


def skewed_susy(num_rows=1200, seed=303, skew=2.0):
    spec = SyntheticSpec(
        num_rows=num_rows,
        cardinalities=[3] * 18,
        skew=skew,
        num_planted_rules=6,
        planted_arity=3,
        measure_kind="binary",
        base_measure=0.45,
        effect_scale=2.5,
        measure_name="IsSignal",
        dimension_prefix="Susy",
    )
    table, _ = generate(spec, seed=seed)
    return table


def run_fast_ancestor():
    table = skewed_susy()
    rows = []
    for sample_size in SAMPLE_SIZES:
        base = run_variant(table, "baseline", k=2,
                           sample_size=sample_size, seed=3)
        fast = run_variant(table, "fastancestor", k=2,
                           sample_size=sample_size, seed=3)
        rows.append([
            sample_size,
            base.rule_generation_seconds,
            fast.rule_generation_seconds,
            base.ancestors_emitted,
            fast.ancestors_emitted,
            base.rule_generation_seconds / fast.rule_generation_seconds,
        ])
    return rows


def test_fig_5_6(once):
    rows = once(run_fast_ancestor)
    print_table(
        "Fig 5.6 — Fast candidate rule processing (SUSY, skewed)",
        ["|s|", "baseline rule gen (s)", "fastancestor rule gen (s)",
         "baseline emitted", "fastancestor emitted", "speedup"],
        rows,
        note="thesis: ~2.5x on rule generation; emitted pairs drop",
    )
    for row in rows:
        assert row[4] < row[3]        # fewer emitted pairs
        assert row[5] > 1.3           # clearly faster rule generation
    # The thesis-scale factor (~2.5x) is reached at the larger |s|.
    assert max(row[5] for row in rows) > 2.0
