"""Figure 5.11 — Rule mining vs prior work on TLC samples (k=20, |s|=64).

Paper: on TLC_2m..TLC_40m, Baseline (broadcast joins) already clearly
beats Naive (the straightforward distributed port of prior work [16]),
Optimized improves on Baseline by ~5x, Optimized* (same KL as the
one-rule-at-a-time variants) stays 2-3x faster, and the gaps widen
with data size.
"""

from repro.bench import dataset_by_name, print_table, run_variant

# Scaled stand-ins for TLC_2m / TLC_20m / TLC_40m.
SIZES = [("tlc_2m", 2000), ("tlc_20m", 6000), ("tlc_40m", 12000)]


def run_tlc():
    rows = []
    for label, num_rows in SIZES:
        table = dataset_by_name("tlc", num_rows=num_rows)
        naive = run_variant(table, "naive", k=8, sample_size=32, seed=3)
        base = run_variant(table, "baseline", k=8, sample_size=32, seed=3)
        optimized = run_variant(table, "optimized", k=8, sample_size=32,
                                seed=3)
        optimized_star = run_variant(
            table, "optimized", k=8, sample_size=32, seed=3,
            target_kl=base.final_kl, max_rules=24,
        )
        rows.append([
            label,
            naive.simulated_seconds,
            base.simulated_seconds,
            optimized.simulated_seconds,
            optimized_star.simulated_seconds,
            base.simulated_seconds / optimized.simulated_seconds,
        ])
    return rows


def test_fig_5_11(once):
    rows = once(run_tlc)
    print_table(
        "Fig 5.11 — Rule mining vs prior work (TLC samples)",
        ["dataset", "naive (s)", "baseline (s)", "optimized (s)",
         "optimized* (s)", "base/opt speedup"],
        rows,
        note="thesis: baseline >> naive; optimized ~5x over baseline; "
             "optimized* still 2-3x; improvement grows with size",
    )
    for label, naive, base, opt, opt_star, speedup in rows:
        assert base < naive
        assert opt < base
        assert opt <= opt_star
        assert opt_star < base
    # Optimized's advantage holds with data size (the thesis sees it
    # grow; at laptop scale it is roughly flat).
    assert rows[-1][5] >= rows[0][5] * 0.75
