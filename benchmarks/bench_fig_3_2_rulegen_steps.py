"""Figure 3.2 — Rule-generation runtime by step (k=10, |s|=64).

Paper: candidate pruning dominates rule generation for the 9-dimension
datasets (>90% for Income and GDELT), while ancestor generation becomes
the bottleneck as SUSY's dimensionality grows from 10 to 18; gain
computation tracks the ancestor volume.
"""

from repro.bench import dataset_by_name, print_table, run_variant

WORKLOADS = [
    ("income", dict(num_rows=3000), 64, 6),
    ("gdelt", dict(num_rows=3000), 64, 6),
    ("susy(10)", dict(num_rows=800, num_dimensions=10), 16, 4),
    ("susy(14)", dict(num_rows=800, num_dimensions=14), 16, 4),
    ("susy(18)", dict(num_rows=800, num_dimensions=18), 16, 4),
]


def run_steps():
    rows = []
    for label, kwargs, sample_size, k in WORKLOADS:
        name = label.split("(")[0]
        table = dataset_by_name(name, **kwargs)
        result = run_variant(
            table, "baseline", k=k, sample_size=sample_size, seed=3
        )
        pruning = result.phase_seconds("candidate_pruning")
        ancestors = result.phase_seconds("ancestor_generation")
        gain = result.phase_seconds("gain")
        total = pruning + ancestors + gain
        rows.append([
            label,
            pruning,
            ancestors,
            gain,
            100.0 * pruning / total,
            100.0 * ancestors / total,
        ])
    return rows


def test_fig_3_2(once):
    rows = once(run_steps)
    print_table(
        "Fig 3.2 — Rule generation runtimes by step",
        ["dataset", "pruning (s)", "ancestors (s)", "gain (s)",
         "pruning %", "ancestors %"],
        rows,
        note="pruning dominates at d=9; ancestor generation dominates "
             "as d grows to 18",
    )
    by_label = {r[0]: r for r in rows}
    # 9-dimension datasets: pruning is the dominant step.
    assert by_label["income"][1] > by_label["income"][2]
    assert by_label["gdelt"][1] > by_label["gdelt"][2]
    # 18-dimension SUSY: ancestor generation dominates.
    assert by_label["susy(18)"][2] > by_label["susy(18)"][1]
    # Ancestor share grows monotonically across SUSY projections.
    shares = [by_label["susy(%d)" % d][5] for d in (10, 14, 18)]
    assert shares[0] < shares[1] < shares[2]
