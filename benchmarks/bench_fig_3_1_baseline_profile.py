"""Figure 3.1 — Baseline SIRUM runtimes by dataset (k=10, |s|=64).

Paper: total runtime split into rule generation and iterative scaling
for Income, GDELT, SUSY and TLC; both phases are significant, the
bottleneck shifts toward rule generation as dimensionality grows, and
TLC (which exceeds cluster memory) is slowest by far.
"""

from repro.bench import dataset_by_name, make_cluster, print_table, run_variant

# (dataset, rows, sample size) — SUSY uses a smaller |s| to keep the
# d=18 candidate explosion tractable at laptop scale.
WORKLOADS = [
    ("income", 3000, 64),
    ("gdelt", 3000, 64),
    ("susy", 400, 16),
    ("tlc", 28000, 64),
]


def run_profile():
    rows = []
    for name, num_rows, sample_size in WORKLOADS:
        table = dataset_by_name(name, num_rows=num_rows)
        cluster = make_cluster()
        if name == "tlc":
            # TLC exceeds the cluster's storage memory in the thesis;
            # shrink the pool so every pass re-reads from disk.
            cluster = make_cluster(executor_memory_bytes=16 * 1024)
        result = run_variant(
            table, "baseline", cluster=cluster, k=10,
            sample_size=sample_size, seed=3,
        )
        rows.append([
            name,
            result.rule_generation_seconds,
            result.iterative_scaling_seconds,
            result.simulated_seconds,
        ])
    return rows


def test_fig_3_1(once):
    rows = once(run_profile)
    print_table(
        "Fig 3.1 — Baseline SIRUM runtimes (k=10)",
        ["dataset", "rule generation (s)", "iterative scaling (s)",
         "total (s)"],
        rows,
        note="both phases significant; TLC slowest (exceeds memory)",
    )
    by_name = {r[0]: r for r in rows}
    # Rule generation and iterative scaling are both non-trivial.
    for name, rule_gen, scaling, total in rows:
        assert rule_gen > 0 and scaling > 0
    # TLC has the largest total by far (memory pressure + size).
    assert by_name["tlc"][3] == max(r[3] for r in rows)
    # SUSY (18 dims) is rule-generation dominated.
    assert by_name["susy"][1] > by_name["susy"][2]
