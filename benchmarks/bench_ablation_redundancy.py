"""Ablation — redundant-candidate elimination (thesis §7 future work).

The thesis's conclusion proposes skipping rules whose support set
equals a descendant's (their gains are identical).  This ablation
measures how many candidates the filter removes and checks the mined
rule set's quality is untouched.
"""

from repro.bench import dataset_by_name, print_table, run_variant


def run_redundancy():
    # TLC's correlated location attributes produce many equal-support
    # ancestor/descendant pairs.
    table = dataset_by_name("tlc", num_rows=3000)
    plain = run_variant(table, "baseline", k=5, sample_size=32, seed=3)
    deduped = run_variant(
        table, "baseline", k=5, sample_size=32, seed=3,
        eliminate_redundant=True,
    )
    removed = deduped.metrics["counters"].get("redundant_candidates", 0)
    return [
        ["off", plain.candidates_scored, 0, plain.final_kl],
        ["on", deduped.candidates_scored, removed, deduped.final_kl],
    ]


def test_ablation_redundancy(once):
    rows = once(run_redundancy)
    print_table(
        "Ablation — redundant-candidate elimination (TLC)",
        ["elimination", "candidates scored", "removed", "final KL"],
        rows,
        note="support-identical specializations disappear; rule quality "
             "is identical by construction",
    )
    off, on = rows
    assert on[2] > 0                      # something was removed
    assert on[1] < off[1]                 # fewer candidates scored
    assert abs(on[3] - off[3]) < 1e-6     # same quality
