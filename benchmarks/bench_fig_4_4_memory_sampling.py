"""Figure 4.4 — Memory over time: SIRUM vs SIRUM on sample data.

Paper: with memory too small for the input (3GB on Income), mining a
60% or 10% sample fits in memory, eliminates the steady-state disk
reads, and cuts runtime substantially — most of all at 10%.
"""

from repro.bench import dataset_by_name, make_cluster, print_table, run_variant

TIGHT_BYTES = 48 * 1024


def run_sampling_memory():
    table = dataset_by_name("income", num_rows=6000)
    rows = []
    for label, fraction in [("full data", None), ("60% sample", 0.6),
                            ("10% sample", 0.1)]:
        cluster = make_cluster(
            num_executors=1, cores_per_executor=8,
            executor_memory_bytes=TIGHT_BYTES,
        )
        result = run_variant(
            table, "baseline", cluster=cluster, k=6, sample_size=32,
            seed=3, sample_data_fraction=fraction,
        )
        rows.append([
            label,
            result.simulated_seconds,
            result.metrics["counters"]["disk_read_bytes"],
            result.information_gain,
        ])
    return rows


def test_fig_4_4(once):
    rows = once(run_sampling_memory)
    print_table(
        "Fig 4.4 — SIRUM vs SIRUM on sample data (tight memory)",
        ["input", "total (s)", "disk read (bytes)", "information gain"],
        rows,
        note="samples fit in memory: runtime and disk I/O drop sharply, "
             "information gain dips only slightly",
    )
    full, sixty, ten = rows
    assert sixty[1] < full[1]
    assert ten[1] < sixty[1]
    assert ten[2] < full[2]
    # Information gain of sampled mining stays positive.  The thesis
    # reports only a small dip; at laptop scale a 10% sample is a few
    # hundred rows, so the dip is larger — we assert it stays a
    # meaningful fraction (see EXPERIMENTS.md).
    assert ten[3] > 0.1 * full[3]
