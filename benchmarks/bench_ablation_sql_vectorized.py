"""Ablation — vectorized SQL executor + plan cache vs row interpreter.

The Fig 5.1/5.2 platform comparisons and the SQL-SIRUM miner issue the
same statements over and over (one CUBE query plus coverage scans per
iteration).  This ablation isolates the engine-level win on that
pattern: a repeated analytical query runs through (a) the row
interpreter with plan caching disabled — the pre-vectorization
configuration — and (b) the vectorized columnar executor with the
statement plan cache.  Results must be identical; only wall-clock
differs.  Unlike the figure benchmarks this measures *real* seconds,
not simulated cluster seconds: the executor itself is the system under
test.
"""

import time

from repro.bench import dataset_by_name, print_table
from repro.sql import SqlEngine

ROWS = 20000
REPEATS = 15
QUERY = (
    "SELECT Inc0, Inc1, COUNT(*) c, SUM(HighIncome) s, AVG(HighIncome) a "
    "FROM t WHERE Inc2 = 1 OR Inc3 = 1 GROUP BY Inc0, Inc1 ORDER BY s DESC"
)


def _timed(engine):
    engine.query(QUERY)  # warm: relation column conversion, cold caches
    start = time.perf_counter()
    for _ in range(REPEATS):
        result = engine.query(QUERY)
    return time.perf_counter() - start, result


def run_comparison():
    table = dataset_by_name("income", num_rows=ROWS)
    row_engine = SqlEngine(vectorized=False, plan_cache_size=0)
    vec_engine = SqlEngine(vectorized=True)
    row_engine.register_table("t", table)
    vec_engine.register_table("t", table)
    row_seconds, row_result = _timed(row_engine)
    vec_seconds, vec_result = _timed(vec_engine)
    return {
        "row_seconds": row_seconds,
        "vec_seconds": vec_seconds,
        "rows_match": row_result.rows == vec_result.rows,
        "cache_hits": vec_engine.plan_cache_info["hits"],
    }


def test_ablation_sql_vectorized(once):
    out = once(run_comparison)
    speedup = out["row_seconds"] / out["vec_seconds"]
    print_table(
        "Ablation — vectorized executor + plan cache vs row interpreter",
        ["configuration", "wall seconds (%d runs)" % REPEATS],
        [
            ["row interpreter, no plan cache", out["row_seconds"]],
            ["vectorized + plan cache", out["vec_seconds"]],
            ["speedup", speedup],
        ],
        note="identical result sets; %d plan-cache hits" % out["cache_hits"],
    )
    assert out["rows_match"]
    assert out["cache_hits"] >= REPEATS
    # Acceptance floor is 5x; typical runs land around 10x.
    assert speedup >= 5.0
