"""Ablation — SIRUM as SQL statements vs hand-written operators.

Complements Figure 5.1: instead of only re-costing the same operator
plan under a PostgreSQL regime, this runs SIRUM *as actual SQL* (GROUP
BY CUBE for candidates, WHERE scans for rule coverage) through the SQL
engine metered on the single-core PostgreSQL regime, against the
operator-based miner on the parallel Spark regime.  Both must find the
same rules; the architectural gap shows up in simulated seconds.
"""

from repro.bench import print_table, run_variant
from repro.core.miner import mine
from repro.data.generators import susy_table
from repro.platforms.base import make_platform_cluster
from repro.platforms.sql_sirum import SqlSirum

ROWS = 250
DIMS = 5
K = 3


def run_comparison():
    table = susy_table(num_rows=ROWS, num_dimensions=DIMS, seed=23)

    postgres = make_platform_cluster("postgres")
    sql_result = SqlSirum(k=K, cluster=postgres).mine(table)

    spark = make_platform_cluster("spark", num_executors=8)
    operator_result = mine(
        table, k=K, variant="naive", exhaustive=True, cluster=spark
    )

    return {
        "sql_seconds": sql_result.simulated_seconds,
        "operator_seconds": operator_result.simulated_seconds,
        "sql_rules": [m.rule for m in sql_result.rule_set],
        "operator_rules": [m.rule for m in operator_result.rule_set],
        "queries": sql_result.queries_issued,
    }


def test_ablation_sql_platform(once):
    out = once(run_comparison)
    print_table(
        "Ablation — SQL-on-PostgreSQL vs operators-on-Spark (same rules)",
        ["implementation", "simulated seconds"],
        [
            ["SQL session (postgres regime, %d queries)" % out["queries"],
             out["sql_seconds"]],
            ["Spark operators (8 executors)", out["operator_seconds"]],
            ["slowdown", out["sql_seconds"] / out["operator_seconds"]],
        ],
        note="thesis Fig 5.1: single-session PostgreSQL ~6x slower than "
             "Spark on one node; architectural gap, identical answers",
    )
    assert out["sql_rules"] == out["operator_rules"]
    assert out["sql_seconds"] > out["operator_seconds"]
