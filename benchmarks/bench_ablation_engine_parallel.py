"""Ablation — parallel stage execution vs the serial engine loop.

``ClusterContext.run_stage`` can run partition kernels on a thread
pool (``parallelism=N``) instead of the serial driver loop.  The modes
are bit-compatible: rules, lambdas, estimates, the KL trace and every
simulated-cluster metric are identical — only real wall-clock changes.
This ablation mines one synthetic workload in both modes, verifies the
bit-identity, and reports the wall-clock speedup at 4 workers.

Thread-level speedup requires real cores: the kernels are NumPy-heavy
(the GIL is released inside the array ops), so on a >=4-core host the
4-worker run clears the 2x acceptance floor.  The floor is asserted
only when the host actually has >=4 usable cores; the JSON line
(``ENGINE_PARALLEL_JSON``) always carries the measured numbers plus
the host width so results are interpretable either way.
"""

import os
import time

from repro.bench import (
    bench_smoke_enabled,
    json_result_line,
    mining_results_identical,
    print_table,
    run_variant,
    speedup,
)
from repro.data.generators import SyntheticSpec, generate

#: CI's bench-smoke job runs a shrunk workload: the bit-identity
#: assertion and JSON line stay, but the wall-clock floor is skipped —
#: at smoke size the per-task NumPy work is too small to amortize pool
#: dispatch, so the floor would gate noise, not a regression.
SMOKE = bench_smoke_enabled()

ROWS = 12_000 if SMOKE else 60_000
NUM_PARTITIONS = 16
PARALLELISM = 4
VARIANT = "optimized"
K = 5
SAMPLE_SIZE = 48


def build_workload():
    spec = SyntheticSpec(
        num_rows=ROWS,
        cardinalities=[8, 6, 5, 4],
        skew=0.3,
        num_planted_rules=4,
        planted_arity=2,
        effect_scale=20.0,
        noise_scale=1.0,
        base_measure=50.0,
    )
    table, _ = generate(spec, seed=7)
    return table


def mine_once(table, parallelism):
    started = time.perf_counter()
    result = run_variant(
        table, VARIANT, parallelism=parallelism, executor="thread",
        k=K, sample_size=SAMPLE_SIZE, seed=0,
        num_partitions=NUM_PARTITIONS,
    )
    wall = time.perf_counter() - started
    return result, wall


def run_comparison():
    table = build_workload()
    serial_result, serial_wall = mine_once(table, parallelism=1)
    parallel_result, parallel_wall = mine_once(table, PARALLELISM)
    return {
        "serial_wall": serial_wall,
        "parallel_wall": parallel_wall,
        "speedup": speedup(serial_wall, parallel_wall),
        "identical": mining_results_identical(serial_result,
                                              parallel_result),
        "simulated_seconds": serial_result.simulated_seconds,
        "rules": len(serial_result.rule_set),
    }


def test_ablation_engine_parallel(once):
    cores = len(os.sched_getaffinity(0))
    out = once(run_comparison)
    print_table(
        "Ablation — engine parallelism (%d workers) vs serial" % PARALLELISM,
        ["mode", "wall seconds", "simulated seconds"],
        [
            ["serial", out["serial_wall"], out["simulated_seconds"]],
            ["parallelism=%d" % PARALLELISM, out["parallel_wall"],
             out["simulated_seconds"]],
            ["speedup", out["speedup"], ""],
        ],
        note="bit-identical rules/lambdas/estimates/metrics: %s; "
             "host cores: %d" % (out["identical"], cores),
    )
    print(json_result_line("ENGINE_PARALLEL_JSON", {
        "rows": ROWS,
        "smoke": SMOKE,
        "executor": "thread",
        "partitions": NUM_PARTITIONS,
        "parallelism": PARALLELISM,
        "host_cores": cores,
        "serial_wall_seconds": out["serial_wall"],
        "parallel_wall_seconds": out["parallel_wall"],
        "speedup": out["speedup"],
        "bit_identical": out["identical"],
        "simulated_seconds": out["simulated_seconds"],
    }))
    assert out["identical"]
    # The acceptance floor (2x at 4 workers) needs at least 4 real
    # cores and the full-size workload; narrower hosts and smoke runs
    # still run the bit-identity comparison and report their measured
    # numbers above.
    if cores >= PARALLELISM and not SMOKE:
        assert out["speedup"] >= 2.0
