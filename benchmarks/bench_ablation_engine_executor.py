"""Ablation — process-pool vs thread-pool executor on Python-heavy kernels.

The engine's thread mode (PR 3) only speeds up kernels that release
the GIL inside NumPy.  The dict-path candidate pipeline — forced here
by giving the table domains too wide for the 63-bit packed codec —
runs pure-Python loops (LCA dict grouping, ancestor enumeration), so
threads serialize on the GIL while ``executor="process"`` ships the
same kernels to worker processes over shared-memory column blocks and
actually uses the cores.

This ablation mines one wide-domain synthetic workload in serial,
thread and process modes, verifies bit-identity (rules, lambdas, KL
trace, every simulated metric), and reports wall-clock.  The
acceptance floor — process beats thread — needs at least 2 real cores;
narrower hosts skip the floor with a reason but still verify identity
and report measured numbers in the JSON line
(``ENGINE_EXECUTOR_JSON``).
"""

import os
import time

from repro.bench import (
    json_result_line,
    mining_results_identical,
    print_table,
    run_variant,
    speedup,
)
from repro.core.codec import RowCodec
from repro.data.generators import SyntheticSpec, generate

ROWS = 20_000
#: 8 attributes x ~9-10 bits each: past the packed codec's 63-bit
#: budget, so candidate generation takes the pure-Python dict path.
CARDINALITIES = [500] * 8
NUM_PARTITIONS = 8
PARALLELISM = 4
VARIANT = "fastpruning"
K = 3
SAMPLE_SIZE = 32


def build_workload():
    spec = SyntheticSpec(
        num_rows=ROWS,
        cardinalities=CARDINALITIES,
        skew=0.6,
        num_planted_rules=4,
        planted_arity=2,
        effect_scale=20.0,
        noise_scale=1.0,
        base_measure=50.0,
    )
    table, _ = generate(spec, seed=7)
    assert not RowCodec.from_table(table).fits, (
        "workload must overflow the packed codec to hit the dict path"
    )
    return table


def mine_once(table, parallelism, executor):
    started = time.perf_counter()
    result = run_variant(
        table, VARIANT, parallelism=parallelism, executor=executor,
        k=K, sample_size=SAMPLE_SIZE, seed=0,
        num_partitions=NUM_PARTITIONS,
    )
    wall = time.perf_counter() - started
    return result, wall


def run_comparison():
    table = build_workload()
    serial_result, serial_wall = mine_once(table, 1, "thread")
    thread_result, thread_wall = mine_once(table, PARALLELISM, "thread")
    process_result, process_wall = mine_once(table, PARALLELISM, "process")
    return {
        "serial_wall": serial_wall,
        "thread_wall": thread_wall,
        "process_wall": process_wall,
        "thread_speedup": speedup(serial_wall, thread_wall),
        "process_speedup": speedup(serial_wall, process_wall),
        "identical_thread": mining_results_identical(serial_result,
                                                     thread_result),
        "identical_process": mining_results_identical(serial_result,
                                                      process_result),
        "simulated_seconds": serial_result.simulated_seconds,
    }


def test_ablation_engine_executor(once):
    cores = len(os.sched_getaffinity(0))
    out = once(run_comparison)
    print_table(
        "Ablation — executor kind on the dict-path kernels "
        "(%d workers)" % PARALLELISM,
        ["mode", "wall seconds", "speedup vs serial"],
        [
            ["serial", out["serial_wall"], 1.0],
            ["thread x%d" % PARALLELISM, out["thread_wall"],
             out["thread_speedup"]],
            ["process x%d" % PARALLELISM, out["process_wall"],
             out["process_speedup"]],
        ],
        note="bit-identical across all modes: %s; host cores: %d" % (
            out["identical_thread"] and out["identical_process"], cores,
        ),
    )
    print(json_result_line("ENGINE_EXECUTOR_JSON", {
        "rows": ROWS,
        "partitions": NUM_PARTITIONS,
        "parallelism": PARALLELISM,
        "host_cores": cores,
        "serial_wall_seconds": out["serial_wall"],
        "thread_wall_seconds": out["thread_wall"],
        "process_wall_seconds": out["process_wall"],
        "thread_speedup": out["thread_speedup"],
        "process_speedup": out["process_speedup"],
        "bit_identical": out["identical_thread"] and
        out["identical_process"],
        "simulated_seconds": out["simulated_seconds"],
        "executor": "thread+process",
    }))
    assert out["identical_thread"]
    assert out["identical_process"]
    # The GIL-sidestep only materializes with real cores under the
    # worker processes; identity and measured numbers stand regardless.
    if cores < 2:
        import pytest

        pytest.skip(
            "process-beats-thread floor needs >=2 cores; host has %d "
            "(bit-identity verified above)" % cores
        )
    assert out["process_wall"] < out["thread_wall"]
