"""Shared benchmark plumbing.

Every ``bench_fig_*.py`` regenerates one thesis figure: it runs the
figure's workload once (``benchmark.pedantic`` with a single round — the
runs are long and deterministic), prints the figure's data series, and
asserts the *shape* the thesis reports (who wins, roughly by how much).

Workloads are scaled ~1000x down from the thesis datasets; the engine's
cost model (see ``repro.engine.cost``) is calibrated so the reported
simulated-cluster seconds keep the thesis's relative behaviour.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a workload exactly once under pytest-benchmark timing."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1,
                                  warmup_rounds=0)

    return runner
