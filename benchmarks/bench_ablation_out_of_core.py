"""Ablation — in-RAM vs out-of-core (file-backed) mining.

The data layer's buffer pool (PR 6) lets the miner run over a colfile
whose decoded size exceeds the pool: blocks stream through a bounded
LRU pool (`REPRO_BUFFER_POOL_BYTES`), evicting and re-faulting as
needed, and process-mode jobs attach mmap-backed partition blocks
instead of copying the whole table into POSIX shm.

This ablation mines one synthetic workload three ways and verifies the
out-of-core determinism guarantee — bit-identical rules, lambdas,
estimates, KL trace and simulated metrics between the in-RAM and
file-backed paths:

1. in-RAM vs file-backed wall-clock, single process (the streaming
   overhead of the pool);
2. process-mode peak RSS, measured inside a fresh child process per
   mode (``ru_maxrss`` is monotonic per process): the file-backed run
   must *structurally* skip the per-job shm copy (``_shm_pack`` stays
   ``None``) where the in-RAM run creates one, and the RSS numbers in
   the JSON line show what that copy costs.

The pool is deliberately sized at a quarter of the decoded table, so
eviction and re-fault paths are exercised, not just the happy path.
Emits ``OUT_OF_CORE_JSON``; ``REPRO_BENCH_SMOKE=1`` shrinks the
workload, keeping every assertion.
"""

import multiprocessing
import os
import resource
import tempfile
import time

from repro.bench import (
    bench_smoke_enabled,
    json_result_line,
    mining_results_identical,
    print_table,
    run_variant,
)
from repro.data.colfile import write_colfile
from repro.data.generators import SyntheticSpec, generate
from repro.data.table import Table

SMOKE = bench_smoke_enabled()

ROWS = 3000 if SMOKE else 30_000
CARDINALITIES = [8, 6, 5, 4]
BLOCK_ROWS = 512
NUM_PARTITIONS = 8
PARALLELISM = 4
VARIANT = "optimized"
K = 4
SAMPLE_SIZE = 32


def build_table():
    spec = SyntheticSpec(
        num_rows=ROWS,
        cardinalities=CARDINALITIES,
        skew=0.4,
        num_planted_rules=4,
        planted_arity=2,
        effect_scale=20.0,
        noise_scale=1.0,
        base_measure=50.0,
    )
    table, _ = generate(spec, seed=7)
    return table


def pool_bytes(table):
    """A pool a quarter the decoded table: must evict to finish."""
    return max(4096, table.estimated_bytes() // 4)


def mine_once(table, executor="thread", parallelism=1):
    started = time.perf_counter()
    result = run_variant(
        table, VARIANT, parallelism=parallelism, executor=executor,
        k=K, sample_size=SAMPLE_SIZE, seed=0,
        num_partitions=NUM_PARTITIONS,
    )
    return result, time.perf_counter() - started


def _process_mode_child(queue, colpath, capacity, in_ram):
    """Mine in process mode and report this child's peak RSS.

    Runs in a fresh child so ``ru_maxrss`` (monotonic per process)
    reflects this mode's own footprint, not a previous run's.
    """
    from repro.data.colfile import read_colfile

    if in_ram:
        table = read_colfile(colpath)
    else:
        table = Table.open_colfile(colpath, capacity_bytes=capacity)
    result, wall = mine_once(table, executor="process",
                             parallelism=PARALLELISM)
    queue.put({
        "wall_seconds": wall,
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "made_shm_copy": table._shm_pack is not None,
        "rules": [tuple(m.rule.values) for m in result.rule_set],
        "lambdas": [float(v) for v in result.lambdas],
        "simulated_seconds": result.simulated_seconds,
    })


def measure_process_mode(colpath, capacity, in_ram):
    queue = multiprocessing.Queue()
    child = multiprocessing.Process(
        target=_process_mode_child, args=(queue, colpath, capacity, in_ram)
    )
    child.start()
    payload = queue.get(timeout=600)
    child.join(timeout=60)
    return payload


def run_comparison(colpath, table):
    capacity = pool_bytes(table)

    in_ram_result, in_ram_wall = mine_once(table)
    file_table = Table.open_colfile(colpath, capacity_bytes=capacity)
    file_result, file_wall = mine_once(file_table)

    shm_run = measure_process_mode(colpath, capacity, in_ram=True)
    mmap_run = measure_process_mode(colpath, capacity, in_ram=False)

    return {
        "identical": mining_results_identical(in_ram_result, file_result),
        "in_ram_wall": in_ram_wall,
        "file_wall": file_wall,
        "pool": file_table.buffer_pool.stats(),
        "decoded_bytes": table.estimated_bytes(),
        "capacity_bytes": capacity,
        "shm_run": shm_run,
        "mmap_run": mmap_run,
        "process_identical": (
            shm_run["rules"] == mmap_run["rules"]
            and shm_run["lambdas"] == mmap_run["lambdas"]
            and shm_run["simulated_seconds"] == mmap_run["simulated_seconds"]
        ),
    }


def test_ablation_out_of_core(once, tmp_path):
    table = build_table()
    colpath = str(tmp_path / "workload.col")
    write_colfile(table, colpath, block_rows=BLOCK_ROWS)
    out = once(lambda: run_comparison(colpath, table))

    pool = out["pool"]
    shm_rss = out["shm_run"]["peak_rss_kib"]
    mmap_rss = out["mmap_run"]["peak_rss_kib"]
    print_table(
        "Ablation — in-RAM vs file-backed mining "
        "(pool %d of %d decoded bytes)" % (
            out["capacity_bytes"], out["decoded_bytes"],
        ),
        ["path", "wall seconds", "peak RSS KiB (process mode)"],
        [
            ["in-RAM (shm copy)", out["in_ram_wall"], shm_rss],
            ["file-backed (mmap)", out["file_wall"], mmap_rss],
        ],
        note="bit-identical: %s; pool hits/misses/evictions: %d/%d/%d" % (
            out["identical"] and out["process_identical"],
            pool["hits"], pool["misses"], pool["evictions"],
        ),
    )
    print(json_result_line("OUT_OF_CORE_JSON", {
        "rows": ROWS,
        "block_rows": BLOCK_ROWS,
        "parallelism": PARALLELISM,
        "decoded_bytes": out["decoded_bytes"],
        "pool_capacity_bytes": out["capacity_bytes"],
        "in_ram_wall_seconds": out["in_ram_wall"],
        "file_backed_wall_seconds": out["file_wall"],
        "process_in_ram_peak_rss_kib": shm_rss,
        "process_file_backed_peak_rss_kib": mmap_rss,
        "process_rss_delta_kib": shm_rss - mmap_rss,
        "pool_hit_rate": pool["hit_rate"],
        "pool_evictions": pool["evictions"],
        "bit_identical": out["identical"] and out["process_identical"],
        "in_ram_made_shm_copy": out["shm_run"]["made_shm_copy"],
        "file_backed_made_shm_copy": out["mmap_run"]["made_shm_copy"],
    }))
    # Out-of-core determinism: the storage mode is invisible in results.
    assert out["identical"]
    assert out["process_identical"]
    # The undersized pool really streamed (evicted and stayed bounded).
    assert pool["evictions"] > 0
    assert pool["resident_bytes"] <= pool["capacity_bytes"]
    # The deleted copy, structurally: process mode over the in-RAM
    # table copies it into shm; over the file-backed table it must not.
    assert out["shm_run"]["made_shm_copy"]
    assert not out["mmap_run"]["made_shm_copy"]
