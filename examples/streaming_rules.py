"""Streaming SIRUM: maintain informative rules as data arrives.

The thesis proposes a streaming SIRUM as future work (§7); this example
runs the incremental miner over a stream whose driving pattern *changes
half-way* — the drift monitor notices the old rules stop explaining the
data and re-mines.

Run:  python examples/streaming_rules.py
"""

from repro.core.config import SirumConfig
from repro.data.generators import SyntheticSpec, generate
from repro.streaming import IncrementalSirum, MicroBatchStream


def phase_table(seed, hot_attribute, effect):
    """A table whose measure is driven by one hot attribute value."""
    spec = SyntheticSpec(
        num_rows=1600,
        cardinalities=[6, 6, 6],
        skew=0.2,
        num_planted_rules=0,
        planted_arity=1,
        noise_scale=0.5,
        base_measure=10.0,
    )
    table, _ = generate(spec, seed=seed)
    measure = table.measure.copy()
    mask = table.dimension_columns()[hot_attribute] == 0
    measure[mask] += effect
    return table.with_measure(measure)


def main():
    # Phase 1: attribute A0 drives the measure; phase 2: A2 takes over.
    phase1 = phase_table(seed=11, hot_attribute=0, effect=30.0)
    phase2 = phase_table(seed=12, hot_attribute=2, effect=45.0)
    batches = (
        list(MicroBatchStream.from_table(phase1, 400))
        + list(MicroBatchStream.from_table(phase2, 400))
    )

    miner = IncrementalSirum(
        config=SirumConfig(k=3, sample_size=48, num_partitions=4),
        drift_factor=1.25,
        window_batches=2,
        seed=5,
    )

    print("batch  rows_in_window  kl        remined  top rules")
    for batch in batches:
        snapshot = miner.process(batch)
        top = ", ".join(str(rule) for rule in snapshot.rules[1:3])
        print("%5d  %14d  %.5f  %-7s  %s" % (
            snapshot.batch_index,
            snapshot.total_rows,
            snapshot.kl,
            "yes" if snapshot.remined else "no",
            top,
        ))

    print("\nFinal maintained rules:")
    for rule in miner.rules:
        print("  %s" % (rule,))


if __name__ == "__main__":
    main()
