"""Data-cleansing diagnosis on a GDELT-style event table.

The thesis's third motivating application (Tables 1.4/1.5): the measure
is a dirtiness flag (1 = the event record is missing its Actor2 type)
and SIRUM surfaces the dimension-value combinations where dirty records
concentrate.

Run:  python examples/data_cleaning.py
"""

import numpy as np

from repro.apps import diagnose_dirty_records
from repro.data.generators import SyntheticSpec, generate


def build_event_table():
    """Events with a planted data-quality problem.

    Two hidden conjunctions (think "US media events with material-
    conflict class") have sharply elevated missing-field rates.
    """
    spec = SyntheticSpec(
        num_rows=6000,
        cardinalities=[40, 12, 2, 60, 4, 8, 8, 8],
        skew=0.9,
        num_planted_rules=3,
        planted_arity=2,
        measure_kind="binary",
        base_measure=0.15,
        effect_scale=4.0,
        measure_name="IsActor2TypeMissing",
        dimension_prefix="Ev",
    )
    table, planted = generate(spec, seed=33)
    return table, planted


def main():
    table, planted = build_event_table()
    overall = table.measure_mean()
    print("Event table: %d rows, %d dimension attributes" % (
        len(table), table.schema.arity,
    ))
    print("Overall dirty-record rate: %.3f" % overall)

    result, findings = diagnose_dirty_records(
        table, k=6, variant="optimized", sample_size=64, seed=2
    )

    print("\nRules highlighting unusual dirty-record rates "
          "(thesis Table 1.5 style):")
    header = list(table.schema.dimensions) + ["AVG(dirty)", "count"]
    print("  " + " | ".join(header))
    for finding in findings:
        cells = list(finding.decode(table))
        cells.append("%.3f" % finding.avg_measure)
        cells.append(str(finding.count))
        print("  " + " | ".join(cells))

    print("\nPlanted problem spots (ground truth):")
    for conjunction, effect in planted:
        rendered = ["*"] * table.schema.arity
        for attr, code in conjunction.items():
            rendered[attr] = table.encoders()[attr].decode(code)
        direction = "dirtier" if effect > 0 else "cleaner"
        print("  (%s)  %s by %.1f log-odds" % (
            ", ".join(rendered), direction, abs(effect),
        ))

    print("\nInformation gain: %.5f   simulated time: %.2fs" % (
        result.information_gain, result.simulated_seconds,
    ))


if __name__ == "__main__":
    main()
