"""Service session: concurrent mining and SQL through one façade.

The thesis frames informative rule mining as interactive, repeated
analysis — the same dataset is mined and queried over and over.  This
example stands up the concurrent mining service and replays that
shape: several "analyst" threads issue overlapping mining and SQL
requests, and the service's scheduler, request coalescing and
versioned result cache collapse the duplicates to a handful of real
executions.

Run:  python examples/service_session.py
"""

import threading

from repro.data.generators import flight_table
from repro.service import PRIORITY_HIGH, RuleMiningService, ServiceConfig


def main():
    table = flight_table()
    service = RuleMiningService(ServiceConfig(num_workers=4))
    service.register_dataset("flights", table)

    print("-- One mining request, served like mine() -------------------")
    result = service.mine("flights", k=3, variant="optimized",
                          sample_size=14, seed=1)
    print(result.rule_set.to_markdown(table))

    print("\n-- Eight analysts replay overlapping requests ----------------")
    queries = [
        "SELECT Destination, AVG(Delay) AS d FROM flights "
        "GROUP BY Destination ORDER BY d DESC",
        "SELECT Day, COUNT(*) AS c FROM flights GROUP BY Day ORDER BY c DESC",
    ]

    def analyst(i):
        service.mine("flights", k=3, variant="optimized",
                     sample_size=14, seed=1)
        service.query(queries[i % len(queries)])

    analysts = [
        threading.Thread(target=analyst, args=(i,)) for i in range(8)
    ]
    for thread in analysts:
        thread.start()
    for thread in analysts:
        thread.join()
    stats = service.stats()
    print("16 requests -> %d executed; %d cache hits, %d coalesced" % (
        stats["jobs"]["completed"], stats["cache"]["hits"],
        stats["coalesce_hits"],
    ))

    print("\n-- Priorities and per-job metrics ----------------------------")
    handle = service.submit_mine("flights", k=2, sample_size=14,
                                 priority=PRIORITY_HIGH)
    handle.result()
    metrics = handle.metrics()
    print("high-priority job waited %.4fs, ran %.4fs (cache hit: %s)" % (
        metrics.queue_wait_seconds, metrics.run_seconds, metrics.cache_hit,
    ))

    print("\n-- Re-registration invalidates the version-keyed cache -------")
    service.register_dataset("flights", table.slice(0, 10))
    count = service.query("SELECT COUNT(*) AS c FROM flights").scalar()
    print("after re-registering a 10-row slice: COUNT(*) = %d" % count)
    print("dataset versions: %s" % service.stats()["datasets"])

    service.close()
    print("\nservice drained and closed")


if __name__ == "__main__":
    main()
