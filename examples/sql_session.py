"""SQL session: informative rule mining as plain SQL (thesis §2.6.1).

The thesis evaluates SIRUM against a PostgreSQL implementation where
candidate generation is a data-cube query.  This example drives the
bundled SQL engine interactively: ad-hoc profiling queries over the
flight table, the CUBE query that *is* candidate-rule generation, and
finally the full SQL-driven miner, cross-checked against the thesis's
Table 1.2 rule set.

Run:  python examples/sql_session.py
"""

from repro.data.generators import flight_table
from repro.platforms.sql_sirum import SqlSirum
from repro.sql import SqlEngine


def main():
    table = flight_table()
    engine = SqlEngine()
    engine.register_table("flights", table, row_id_column="flight_id")

    print("-- Ad-hoc profiling ------------------------------------------")
    query = (
        "SELECT Destination, AVG(Delay) AS avg_delay, COUNT(*) AS flights "
        "FROM flights GROUP BY Destination "
        "HAVING COUNT(*) >= 2 ORDER BY avg_delay DESC"
    )
    print(query)
    print(engine.query(query).pretty())

    print("\n-- Candidate rules are one CUBE query (thesis 3.1) -----------")
    cube_query = (
        "SELECT Day, Origin, Destination, SUM(Delay) AS sm, COUNT(*) AS c "
        "FROM flights GROUP BY CUBE(Day, Origin, Destination) "
        "ORDER BY c DESC, Day, Origin, Destination LIMIT 8"
    )
    print(cube_query)
    print(engine.query(cube_query).pretty())

    print("\n-- Prepared statements and the plan cache --------------------")
    statement = engine.prepare(
        "SELECT COUNT(*) AS late FROM flights WHERE Delay > 10"
    )
    for _ in range(5):
        late = statement.execute().scalar()
    print("late flights: %d (statement planned once, executed 5x)" % late)
    for _ in range(3):  # identical text -> the engine-level plan cache
        engine.query("SELECT COUNT(*) AS late FROM flights WHERE Delay > 10")
    info = engine.plan_cache_info
    print("plan cache: %d hits / %d misses across the session"
          % (info["hits"], info["misses"]))

    print("\n-- The optimizer at work --------------------------------------")
    explain_query = (
        "SELECT Destination FROM flights WHERE Delay > 10"
    )
    print("EXPLAIN %s" % explain_query)
    print(engine.explain(explain_query))
    print("(the filter was pushed into the scan; only one column is read)")

    print("\n-- Full SQL-driven mining (PostgreSQL architecture) ----------")
    result = SqlSirum(k=3).mine(table)
    print("%d SQL statements issued" % result.queries_issued)
    print("rule set (thesis Table 1.2):")
    for mined in result.rule_set:
        values = mined.decode(table)
        print(
            "  (%s)  AVG=%.1f  count=%d"
            % (", ".join(values), mined.avg_measure, mined.count)
        )
    print("KL trace: " + " -> ".join("%.4f" % kl for kl in result.kl_trace))


if __name__ == "__main__":
    main()
