"""A tour of SIRUM's optimizations and scalability behaviour.

Runs every Table 4.2 variant on a GDELT-shaped workload, then shows
strong scaling (more executors, same data) and SIRUM-on-sample-data
(thesis §4.5) on a TLC-shaped workload.  All times are the engine's
simulated cluster seconds — deterministic and comparable across runs.

Run:  python examples/scalability_tour.py
"""

from repro.bench import dataset_by_name, make_cluster, print_table, \
    run_variant
from repro.core import VARIANTS


def variant_comparison():
    table = dataset_by_name("gdelt", num_rows=3000)
    rows = []
    for variant in VARIANTS:
        result = run_variant(table, variant, k=8, sample_size=32, seed=3)
        rows.append([
            variant,
            result.simulated_seconds,
            result.rule_generation_seconds,
            result.iterative_scaling_seconds,
            result.final_kl,
        ])
    print_table(
        "SIRUM variants on GDELT-shaped data (k=8)",
        ["variant", "total (s)", "rule gen (s)", "scaling (s)", "KL"],
        rows,
        note="optimized is fastest; every variant reaches the same KL",
    )


def strong_scaling():
    table = dataset_by_name("tlc", num_rows=6000)
    rows = []
    for executors in (2, 4, 8, 16):
        cluster = make_cluster(num_executors=executors)
        result = run_variant(table, "optimized", cluster=cluster, k=5,
                             sample_size=16, seed=3)
        rows.append([executors, result.simulated_seconds])
    print_table(
        "Strong scaling on TLC-shaped data (fixed data, more executors)",
        ["executors", "simulated time (s)"],
        rows,
        note="time decreases with executors, sub-linearly (thesis Fig 5.16)",
    )


def sampling_tradeoff():
    table = dataset_by_name("tlc", num_rows=8000)
    rows = []
    for fraction in (1.0, 0.1, 0.01):
        result = run_variant(
            table, "optimized", k=5, sample_size=16, seed=3,
            sample_data_fraction=fraction,
        )
        rows.append([
            "%.0f%%" % (100 * fraction),
            result.simulated_seconds,
            result.information_gain,
        ])
    print_table(
        "SIRUM on sample data (thesis §4.5 / Figs 5.18-5.19)",
        ["sampling rate", "simulated time (s)", "information gain"],
        rows,
        note="large speedups at 10% with only a small information-gain loss",
    )


def main():
    variant_comparison()
    strong_scaling()
    sampling_tradeoff()


if __name__ == "__main__":
    main()
