"""Network front door: mining over a socket instead of in-process.

The service façade (see ``service_session.py``) also speaks a small
length-prefixed framed protocol over TCP, so analysts on other
machines — or other processes — get the same scheduler, coalescing and
result cache.  This example boots the server on an ephemeral localhost
port, then drives it with the bundled :class:`ServiceClient`: a mining
job, a SQL query, a second identical submission that coalesces at the
protocol layer, and the job-completion event stream.  Results that
cross the wire are bit-identical to in-process ones.

Run:  python examples/net_client.py
"""

import numpy as np

from repro.data.generators import flight_table
from repro.net import NetConfig, ServiceClient, ServiceServer, TenantPolicy
from repro.service import RuleMiningService, ServiceConfig

MINE = {"k": 3, "variant": "optimized", "sample_size": 14, "seed": 1}


def main():
    table = flight_table()
    service = RuleMiningService(ServiceConfig(num_workers=2))
    service.register_dataset("flights", table)
    server = ServiceServer(service, NetConfig(
        port=0,  # ephemeral: the kernel picks a free port
        tenants={"analyst": TenantPolicy(max_inflight=4,
                                         priority="high")},
    ))
    server.start()
    print("serving on 127.0.0.1:%d" % server.port)

    client = ServiceClient("127.0.0.1", server.port, tenant="analyst")
    watcher = ServiceClient("127.0.0.1", server.port)
    watcher.subscribe()

    print("\n-- Mine over the wire ----------------------------------------")
    remote = client.mine("flights", **MINE)
    print(remote.rule_set.to_markdown(table))
    local = service.mine("flights", **MINE)
    print("bit-identical to in-process: rules=%s lambdas=%s" % (
        [tuple(m.rule.values) for m in remote.rule_set]
        == [tuple(m.rule.values) for m in local.rule_set],
        np.array_equal(remote.lambdas, local.lambdas),
    ))

    print("\n-- SQL over the wire -----------------------------------------")
    rows = client.query(
        "SELECT Destination, AVG(Delay) AS d FROM flights "
        "GROUP BY Destination ORDER BY d DESC"
    )
    for destination, delay in rows.rows:
        print("  %-10s %.2f" % (destination, delay))

    print("\n-- Duplicate submissions collapse ----------------------------")
    again = client.submit_mine("flights", **MINE)
    print("same request again: cache_hit=%s job_id=%d"
          % (again.cache_hit, again.job_id))

    print("\n-- Completion events stream to subscribers -------------------")
    event = watcher.next_event(timeout=10.0)
    print("watcher saw: %s job %d ok=%s"
          % (event["type"], event["job_id"], event["ok"]))

    stats = client.stats()["net"]
    print("\nnet stats: %d connections, %d frames in, %d frames out, "
          "tenant inflight=%d" % (
              stats["connections"], stats["frames_in"],
              stats["frames_out"],
              stats["tenants"]["analyst"]["inflight"],
          ))

    client.close()
    watcher.close()
    drained = server.drain(timeout=10.0)
    server.stop()
    service.close()
    print("server drained (all jobs flushed: %s) and stopped" % drained)


if __name__ == "__main__":
    main()
