"""Data-cube algorithms tour: four ways to the same cube.

SIRUM's candidate generation is a data-cube computation; the literature
the thesis builds on offers several algorithms with different
economics.  This example computes the full cube of a SUSY-shaped table
with each of them, verifies they agree, shows iceberg pruning, and
answers queries from a budget-limited partial cube.

Run:  python examples/cube_algorithms.py
"""

from repro.core.rule import WILDCARD
from repro.cube import (
    PartialCube,
    buc_cube,
    choose_cuboids,
    hash_cube,
    naive_cube,
    sort_cube,
)
from repro.data.generators import susy_table


def main():
    table = susy_table(num_rows=500, num_dimensions=6, seed=11)
    print(
        "Input: %d rows, %d dimensions -> %d cuboids"
        % (len(table), table.schema.arity, 2 ** table.schema.arity)
    )

    print("\n-- Computing the full cube four ways --------------------------")
    reference = None
    for name, algorithm in [
        ("naive (pass per cuboid)", naive_cube),
        ("hash  (smallest parent)", hash_cube),
        ("sort  (pipe-sort paths)", sort_cube),
        ("BUC   (bottom-up)", buc_cube),
    ]:
        stats = {}
        cube = algorithm(table, stats=stats)
        if reference is None:
            reference = cube
        agreement = "ok" if cube == reference else "MISMATCH"
        work = stats.get("tuples_read", 0)
        print(
            "  %-24s tuples read %8d   groups %6d   [%s]"
            % (name, work, cube.num_groups(), agreement)
        )

    print("\n-- Iceberg pruning --------------------------------------------")
    for support in (1, 5, 25):
        iceberg = buc_cube(table, min_support=support)
        print(
            "  min_support=%-3d -> %6d groups survive"
            % (support, iceberg.num_groups())
        )

    print("\n-- Partial cube under a storage budget ------------------------")
    full = hash_cube(table)
    budget = full.num_groups() // 3
    selected = choose_cuboids(full, budget_groups=budget)
    partial = PartialCube(full, selected)
    print(
        "  budget %d groups -> %d of %d cuboids materialized (%d groups)"
        % (budget, len(selected), len(full.cuboids), partial.stored_groups())
    )

    # Answer a SIRUM-style point query: the average measure of a rule.
    rule = tuple([WILDCARD] * (table.schema.arity - 1) + [0])
    direct = full.point(rule)
    answered = partial.point(rule)
    print(
        "  point query on (%s): full cube avg=%.4f, partial avg=%.4f "
        "(roll-up scanned %d groups)"
        % (
            ", ".join("*" if v == WILDCARD else str(v) for v in rule),
            direct.avg,
            answered.avg,
            partial.last_answer_cost,
        )
    )
    assert answered == direct


if __name__ == "__main__":
    main()
