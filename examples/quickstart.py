"""Quickstart: mine informative rules from the thesis's flight table.

Reproduces the worked example of thesis Tables 1.1 and 1.2: a 14-row
flight-delay relation, the informative rule set over it, and the
maximum-entropy estimates (the m-hat columns).

Run:  python examples/quickstart.py
"""

from repro import mine
from repro.data.generators import flight_table


def main():
    table = flight_table()
    print("Input: %d flights, dimensions %s, measure %r" % (
        len(table), list(table.schema.dimensions), table.schema.measure,
    ))

    # k=3 extra rules on top of the all-wildcards rule; using the whole
    # table as the pruning sample makes the search exhaustive, matching
    # the thesis's hand-worked example.
    result = mine(table, k=3, variant="optimized", sample_size=len(table),
                  seed=1)

    print("\nInformative rule set (thesis Table 1.2):")
    print(result.rule_set.to_markdown(table))

    print("\nPer-flight maximum-entropy estimates of the delay:")
    for i in range(len(table)):
        day, origin, dest, delay = table.decoded_row(i)
        print("  %-4s %-9s -> %-9s  actual %5.1f   estimated %6.2f" % (
            day, origin, dest, delay, result.estimates[i],
        ))

    print("\nKL-divergence trace (one entry per mining iteration):")
    print("  " + " -> ".join("%.5f" % kl for kl in result.kl_trace))
    print("Information gain of the rule set: %.5f" % result.information_gain)
    print("Simulated cluster time: %.2fs (wall %.2fs)" % (
        result.simulated_seconds, result.wall_seconds,
    ))


if __name__ == "__main__":
    main()
