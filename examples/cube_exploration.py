"""Smart data-cube exploration with prior knowledge.

The thesis's second motivating application (Table 1.3): the analyst has
already examined some group-by results; SIRUM recommends the cells that
carry the most *additional* information about the measure, skipping
what the analyst already knows.

Run:  python examples/cube_exploration.py
"""

from repro.apps import explore_cube, group_by_rules, \
    lowest_cardinality_dimensions
from repro.data.generators import tlc_table


def main():
    table = tlc_table(num_rows=5000)
    print("Taxi-trip table: %d rows, dimensions %s" % (
        len(table), list(table.schema.dimensions),
    ))

    prior_dims = lowest_cardinality_dimensions(table, 2)
    prior_cells = sum(
        (group_by_rules(table, name) for name in prior_dims), []
    )
    print(
        "\nThe analyst has already examined GROUP BY %s and GROUP BY %s "
        "(%d cells total)." % (prior_dims[0], prior_dims[1],
                               len(prior_cells))
    )

    result = explore_cube(
        table, k=5, prior_dimensions=prior_dims, variant="optimized",
        seed=4,
    )

    print("\nRecommended cells to drill into next "
          "(most additional information first):")
    recommendations = [m for m in result.rule_set if m.iteration > 0]
    header = list(table.schema.dimensions) + [
        "AVG(%s)" % table.schema.measure, "count",
    ]
    print("  " + " | ".join(header))
    for mined in recommendations:
        cells = list(mined.decode(table))
        cells.append("%.2f" % mined.avg_measure)
        cells.append(str(mined.count))
        print("  " + " | ".join(cells))

    print("\nKL-divergence: %.5f -> %.5f over %d recommendations" % (
        result.kl_trace[0], result.final_kl, len(recommendations),
    ))


if __name__ == "__main__":
    main()
