"""Data-cleansing diagnosis: SIRUM vs Data Auditor vs Data X-Ray.

The thesis's third application (§1, Tables 1.4/1.5) flags dimension
values correlated with dirty records, and Chapter 6 situates SIRUM
against Data Auditor's pattern tableaux [17] and Data X-Ray [35].  This
example plants a systematic error in a GDELT-shaped feed, runs all
three diagnosers and compares what each one reports.

Run:  python examples/cleaning_comparison.py
"""

import numpy as np

from repro.apps import diagnose_dirty_records
from repro.baselines import diagnose, generate_tableau
from repro.data.schema import Schema
from repro.data.table import Table


def make_dirty_feed(num_rows=600, seed=4):
    """Events where one (source, format) combination drops Actor2Type."""
    rng = np.random.default_rng(seed)
    sources = ["reuters", "ap", "aggregator7", "afp"]
    formats = ["cameo", "raw"]
    regions = ["US", "EU", "ASIA", "AFRICA"]
    rows = []
    for _ in range(num_rows):
        source = sources[rng.integers(len(sources))]
        fmt = formats[rng.integers(len(formats))]
        region = regions[rng.integers(len(regions))]
        systematic = source == "aggregator7" and fmt == "raw"
        noise = rng.random() < 0.03
        dirty = 1.0 if (systematic or noise) else 0.0
        rows.append((source, fmt, region, dirty))
    schema = Schema(["source", "format", "region"], "is_actor2_missing")
    return Table.from_rows(schema, rows)


def main():
    table = make_dirty_feed()
    overall = table.measure_mean()
    print(
        "Feed: %d events, %.1f%% missing Actor2 type overall"
        % (len(table), 100 * overall)
    )

    print("\n-- SIRUM informative rules (thesis Table 1.5 view) ------------")
    _result, findings = diagnose_dirty_records(table, k=4, seed=2)
    for finding in findings[:4]:
        print(
            "  (%s)  dirty rate %.2f  count %d"
            % (", ".join(finding.decode(table)), finding.avg_measure,
               finding.count)
        )

    print("\n-- Data Auditor pattern tableau [17] ---------------------------")
    tableau = generate_tableau(table, min_confidence=0.7, seed=2)
    for pattern in tableau:
        print(
            "  (%s)  support %d  confidence %.2f"
            % (", ".join(pattern.decode(table)), pattern.support,
               pattern.confidence)
        )
    print("  coverage of dirty tuples: %.0f%%" % (100 * tableau.coverage))

    print("\n-- Data X-Ray cost-descent diagnosis [35] ----------------------")
    xray = diagnose(table, alpha=3.0, seed=2)
    for values in xray.decode(table):
        print("  (%s)" % ", ".join(values))
    print(
        "  cost %.1f  false positives %d  false negatives %d"
        % (xray.cost, xray.false_positives, xray.false_negatives)
    )

    print(
        "\nAll three converge on the planted (aggregator7, raw, *) error; "
        "SIRUM additionally quantifies each rule's information content."
    )


if __name__ == "__main__":
    main()
